package projections

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"charmgo/internal/apps/leanmd"
	"charmgo/internal/apps/pdes"
	"charmgo/internal/charm"
	"charmgo/internal/lb"
	"charmgo/internal/machine"
)

// The observability acceptance gate: an identical app run on the
// sequential, the conservative parsim, and the optimistic optsim backend
// must produce byte-identical event logs — same events, same virtual
// timestamps, same monotone event IDs. The log serialization (WriteLog)
// is the comparison unit, so any divergence in hook-call order,
// timestamping, or ID assignment anywhere in the runtime shows up as a
// byte diff here. (Spec lifecycle events are opt-in precisely because
// they would break this identity; see TestSpecEventsRecorded.)

// tracedRun executes an app with a tracer attached (engine phase events
// included) and returns the serialized event log.
func tracedRun(t *testing.T, mk func() machine.Config, backend string, run func(rt *charm.Runtime)) []byte {
	t.Helper()
	cfg := mk()
	cfg.Backend = backend
	rt := charm.New(machine.New(cfg))
	tr := Attach(rt, Options{EngineEvents: true})
	run(rt)
	if tr.Dropped() != 0 {
		t.Fatalf("%s backend dropped %d events; grow RingCap so the comparison is total", backend, tr.Dropped())
	}
	var buf bytes.Buffer
	if err := WriteLog(&buf, tr.Events()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func assertTraceCrossBackend(t *testing.T, name string, mk func() machine.Config, run func(rt *charm.Runtime)) {
	t.Helper()
	seq := tracedRun(t, mk, "sequential", run)
	if len(seq) == 0 {
		t.Fatalf("%s: sequential run produced an empty trace", name)
	}
	for _, backend := range []string{"parallel", "optimistic"} {
		for _, procs := range []int{1, 2, 8} {
			t.Run(fmt.Sprintf("%s/gomaxprocs=%d", backend, procs), func(t *testing.T) {
				prev := runtime.GOMAXPROCS(procs)
				defer runtime.GOMAXPROCS(prev)
				par := tracedRun(t, mk, backend, run)
				if !bytes.Equal(seq, par) {
					t.Fatalf("%s: event log diverged on %s backend at GOMAXPROCS=%d (%d vs %d bytes); first diff at byte %d",
						name, backend, procs, len(seq), len(par), firstDiff(seq, par))
				}
			})
		}
	}
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

func TestLeanMDTraceCrossBackend(t *testing.T) {
	cfg := leanmd.Config{
		CellsX: 3, CellsY: 3, CellsZ: 3,
		AtomsPerCell: 20, Steps: 8, Seed: 42,
		LBPeriod: 3, Gaussian: 0.35, // imbalance: exercises migration + LB events
	}
	assertTraceCrossBackend(t, "leanmd",
		func() machine.Config { return machine.Testbed(8) },
		func(rt *charm.Runtime) {
			rt.SetBalancer(lb.Greedy{})
			if _, err := leanmd.Run(rt, cfg); err != nil {
				t.Fatal(err)
			}
		})
}

// TestSpecEventsRecorded exercises the opt-in speculation lifecycle
// trace: on the optimistic backend with SpecEvents on, the log must
// contain launch and commit events (and be internally consistent:
// commits + rollbacks never exceed launches), and two identical runs
// must produce byte-identical logs — speculation decisions are made by
// the driver, so the extra events are as deterministic as the rest.
func TestSpecEventsRecorded(t *testing.T) {
	cfg := pdes.Config{
		LPs: 32, EventsPerLP: 8, TargetEvents: 2000, Seed: 7,
	}
	specRun := func() []byte {
		mcfg := machine.Testbed(8)
		mcfg.Backend = "optimistic"
		rt := charm.New(machine.New(mcfg))
		tr := Attach(rt, Options{EngineEvents: true, SpecEvents: true})
		if _, err := pdes.Run(rt, cfg); err != nil {
			t.Fatal(err)
		}
		if tr.Dropped() != 0 {
			t.Fatalf("dropped %d events", tr.Dropped())
		}
		var buf bytes.Buffer
		if err := WriteLog(&buf, tr.Events()); err != nil {
			t.Fatal(err)
		}
		var launches, commits, rollbacks int
		for _, e := range tr.Events() {
			switch e.Kind {
			case KSpecLaunch:
				launches++
			case KSpecCommit:
				commits++
			case KSpecRollback:
				rollbacks++
			}
		}
		if launches == 0 || commits == 0 {
			t.Fatalf("optimistic run recorded no speculation (launch=%d commit=%d)", launches, commits)
		}
		if commits+rollbacks > launches {
			t.Fatalf("spec accounting broken: %d launches but %d commits + %d rollbacks",
				launches, commits, rollbacks)
		}
		return buf.Bytes()
	}
	a, b := specRun(), specRun()
	if !bytes.Equal(a, b) {
		t.Fatalf("spec-event trace not reproducible (%d vs %d bytes); first diff at byte %d",
			len(a), len(b), firstDiff(a, b))
	}
}

func TestPDESTraceCrossBackend(t *testing.T) {
	cfg := pdes.Config{
		LPs: 64, EventsPerLP: 8, TargetEvents: 4000, Seed: 42,
		UseTram: true, LBPeriodWindows: 4, // exercises TRAM buffer/flush events
	}
	assertTraceCrossBackend(t, "pdes",
		func() machine.Config { return machine.Testbed(16) },
		func(rt *charm.Runtime) {
			rt.SetBalancer(lb.Greedy{})
			if _, err := pdes.Run(rt, cfg); err != nil {
				t.Fatal(err)
			}
		})
}
