// Package parsim is the conservative parallel execution backend for the
// virtual machine: a des.Engine that executes provably independent events
// concurrently on worker goroutines while committing their global effects
// in the exact (timestamp, sequence) order the sequential engine would use,
// so every run is bit-for-bit identical to internal/des.Sequential.
//
// # Design
//
// The engine keeps ONE global event heap with exactly the sequential
// engine's ordering, and a single driving goroutine that pops and commits
// events strictly in that order. Parallelism comes from running event
// *phases* early: a sharded event's body is split by the runtime into a
// phase (reads and writes only its shard's state, buffers everything else)
// and a commit closure (applies the buffered global effects). The driver
// pipelines the two:
//
//   - Before every pop it scans the conservative window [t0, t0+L) opened
//     by the current heap top, where L is the lookahead — the minimum
//     cross-shard latency of the machine model (the α of the α–β network
//     model). For each shard, the earliest pending event in the window is
//     handed to a worker goroutine, which runs its phase concurrently and
//     caches the commit closure. At most one event per shard is ever in
//     flight, and never past a global event.
//   - The pop loop then proceeds exactly like the sequential engine: take
//     the heap minimum, set the clock to its timestamp, run its commit
//     (waiting for the phase if a worker has it). Events whose phases were
//     never launched — globals, and shard-minima that appeared after the
//     last scan — run inline on the driver.
//
// The window makes early phases safe: an in-flight event is its shard's
// earliest, so the only events that could still be scheduled before it are
// same-shard continuations of itself (impossible — they are spawned by its
// own commit) or cross-shard messages, which the machine model delivers at
// least L later and therefore outside the window. Phases of distinct
// shards touch disjoint state, and commits — which may touch anything —
// run serially on the driver in heap order. Because the pop order, the
// sequence numbering, and the commit order all match the sequential engine
// exactly, equivalence is by construction rather than by test (the
// cross-backend digest suite enforces it empirically anyway).
//
// Unlike a batched fork-join design, the sliding window keeps the pipeline
// full across event chains: when a commit schedules its shard's next event
// (a PE's scheduler pumping the next message), that event becomes
// launchable at the very next scan, while the driver is still committing
// other shards' events.
//
// # Discipline
//
// Phase functions must not call back into the engine — the runtime's
// context buffering guarantees this for all runtime paths. Commits may
// schedule freely on their own shard and anywhere at or beyond the window;
// scheduling a global event, or a cross-shard event that precedes an
// in-flight phase, is a lookahead violation and panics loudly rather than
// silently diverging (the runtime's latency model guarantees every message
// path satisfies the bound).
package parsim

import (
	"container/heap"
	"fmt"
	"runtime"
	"sync"

	"charmgo/internal/des"
	"charmgo/internal/projections/metrics"
)

// Options configures an engine.
type Options struct {
	// Lookahead is the conservative window width: the minimum virtual
	// latency of any cross-shard interaction (the machine's α). Zero
	// disables early phase launches (every event runs inline — correct but
	// serial).
	Lookahead des.Time
	// Shards is the number of shards (virtual nodes). Events carry shard
	// ids in [0, Shards); ids outside the range are treated as global.
	Shards int
	// Workers caps the worker goroutines running phases; 0 means
	// GOMAXPROCS.
	Workers int
}

// event mirrors the des engines' event forms with a shard binding and
// phase-pipeline state.
type event struct {
	at    des.Time
	fn    func()        // global body (shard < 0)
	sfn   func() func() // sharded two-phase body (closure form)
	pfn   des.PhaseFn   // sharded two-phase body (preallocated form)
	cfn   des.CommitFn  // sharded commit-only body (never launched early)
	a     any
	b     int64
	seq   uint64
	pos   int // heap index, -1 when popped or cancelled
	shard int // -1 for global events

	// Pipeline state, owned by the driver except as noted.
	launched bool
	done     chan struct{} // closed by the worker when the phase finishes
	commit   func()        // written by the worker before close(done)
	pval     any           // captured phase panic, re-raised at pop
	panicked bool
	launchNs int64 // wall stamp at launch, 0 unless a probe is installed
}

// Live reports whether the event is still scheduled.
func (ev *event) Live() bool { return ev.pos >= 0 }

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].pos = i
	h[j].pos = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.pos = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.pos = -1
	*h = old[:n-1]
	return ev
}

// precedes reports whether a comes before b in the engine's total event
// order (timestamp, then scheduling sequence).
func precedes(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Engine is the parallel conservative event executor. It satisfies
// des.Engine. Its methods must be called from the driving goroutine (or
// from an event's commit) — the parallelism is internal.
type Engine struct {
	now      des.Time
	seq      uint64
	heap     eventHeap
	stopped  bool
	executed uint64

	lookahead des.Time
	workers   int

	// Worker pool, alive only while Run/RunUntil executes.
	jobs   chan *event
	poolWG sync.WaitGroup

	// In-flight phase tracking, owned by the driver.
	launchedOn    []*event // per shard: the launched, not-yet-popped event
	pending       int      // count of launched, not-yet-popped events
	maxLaunchedAt des.Time // high-water timestamp while pending > 0

	// Scan scratch, reused across steps.
	stack     []int
	shardBest []*event
	touched   []int

	stats Stats
	sink  des.TraceSink
	probe des.Probe
}

// Stats aggregates scheduling counters over the engine's lifetime; useful
// for judging how much parallelism a workload exposes.
type Stats struct {
	Launched    uint64 // phases run early on worker goroutines
	Inline      uint64 // sharded events run inline on the driver
	Global      uint64 // global events (always inline)
	MaxInFlight int    // most concurrently launched phases observed
}

// EngineStats returns the scheduling counters accumulated so far.
func (e *Engine) EngineStats() Stats { return e.stats }

// SetTraceSink installs (or, with nil, removes) the engine's phase-event
// sink. The sink is called only from the driving goroutine, at the pop of
// each sharded event and after its commit — the same positions, in the
// same total order, as the sequential engine.
func (e *Engine) SetTraceSink(s des.TraceSink) { e.sink = s }

// SetProbe installs (or, with nil, removes) the engine's wall-clock
// telemetry probe (internal/telemetry). Strictly side-band: the probe
// observes launch latency, driver stalls, and window stalls, and nothing
// it returns influences scheduling. The zero-probe path is a nil check.
func (e *Engine) SetProbe(p des.Probe) { e.probe = p }

// RegisterMetrics exposes the engine's scheduling counters through a
// metrics registry.
func (e *Engine) RegisterMetrics(reg *metrics.Registry) {
	reg.GaugeFunc("parsim.phases_launched", func() float64 { return float64(e.stats.Launched) })
	reg.GaugeFunc("parsim.phases_inline", func() float64 { return float64(e.stats.Inline) })
	reg.GaugeFunc("parsim.global_events", func() float64 { return float64(e.stats.Global) })
	reg.GaugeFunc("parsim.max_in_flight", func() float64 { return float64(e.stats.MaxInFlight) })
}

// New returns a parallel engine with the clock at zero.
func New(opts Options) *Engine {
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	shards := opts.Shards
	if shards < 1 {
		shards = 1
	}
	return &Engine{
		lookahead:  opts.Lookahead,
		workers:    w,
		launchedOn: make([]*event, shards),
		shardBest:  make([]*event, shards),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() des.Time { return e.now }

// Pending returns the number of scheduled, uncancelled events.
func (e *Engine) Pending() int { return len(e.heap) }

// Executed counts events that have run.
func (e *Engine) Executed() uint64 { return e.executed }

// GlobalHorizon returns the earliest timestamp at which a global event may
// be scheduled without preceding an in-flight phase: the high-water
// timestamp of launched phases while any are pending, else the current
// time. Scheduling a global At at exactly this horizon always passes
// checkSchedule.
func (e *Engine) GlobalHorizon() des.Time {
	if e.pending > 0 && e.maxLaunchedAt > e.now {
		return e.maxLaunchedAt
	}
	return e.now
}

// checkSchedule guards the scheduling entry points against lookahead
// violations: new work must never precede an in-flight phase that could
// have observed it.
func (e *Engine) checkSchedule(shard int, t des.Time) {
	if shard < 0 {
		if e.pending > 0 && t < e.maxLaunchedAt {
			panic(fmt.Sprintf(
				"parsim: lookahead violation: global event scheduled at t=%v while a phase at t=%v is in flight",
				t, e.maxLaunchedAt))
		}
		return
	}
	if le := e.launchedOn[shard]; le != nil && t < le.at {
		panic(fmt.Sprintf(
			"parsim: lookahead violation: shard %d event scheduled at t=%v before its in-flight phase at t=%v",
			shard, t, le.at))
	}
}

// At schedules fn as a global event: it runs alone on the driver, with no
// phases in flight.
func (e *Engine) At(t des.Time, fn func()) des.Handle {
	if t < e.now {
		panic(fmt.Sprintf("parsim: scheduling event at %v before now %v", t, e.now))
	}
	e.checkSchedule(-1, t)
	ev := &event{at: t, fn: fn, seq: e.seq, shard: -1}
	e.seq++
	heap.Push(&e.heap, ev)
	return des.HandleFor(ev)
}

// AtShard schedules a two-phase event on a shard.
func (e *Engine) AtShard(shard int, t des.Time, fn func() func()) des.Handle {
	if t < e.now {
		panic(fmt.Sprintf("parsim: scheduling event at %v before now %v", t, e.now))
	}
	if shard < 0 || shard >= len(e.launchedOn) {
		panic(fmt.Sprintf("parsim: shard %d out of range [0,%d)", shard, len(e.launchedOn)))
	}
	e.checkSchedule(shard, t)
	ev := &event{at: t, sfn: fn, seq: e.seq, shard: shard}
	e.seq++
	heap.Push(&e.heap, ev)
	return des.HandleFor(ev)
}

// AtShardFn schedules a two-phase event from a preallocated PhaseFn. It is
// launchable on workers exactly like the closure form.
func (e *Engine) AtShardFn(shard int, t des.Time, fn des.PhaseFn, a any, b int64) des.Handle {
	if t < e.now {
		panic(fmt.Sprintf("parsim: scheduling event at %v before now %v", t, e.now))
	}
	if shard < 0 || shard >= len(e.launchedOn) {
		panic(fmt.Sprintf("parsim: shard %d out of range [0,%d)", shard, len(e.launchedOn)))
	}
	e.checkSchedule(shard, t)
	ev := &event{at: t, pfn: fn, a: a, b: b, seq: e.seq, shard: shard}
	e.seq++
	heap.Push(&e.heap, ev)
	return des.HandleFor(ev)
}

// AtShardCommit schedules a sharded event whose entire body runs at commit
// position on the driver. It participates in shard ordering (the launch
// scan will not run a later same-shard phase past it) but is never handed
// to a worker: its body may touch global state, exactly like any commit.
func (e *Engine) AtShardCommit(shard int, t des.Time, fn des.CommitFn, a any, b int64) des.Handle {
	if t < e.now {
		panic(fmt.Sprintf("parsim: scheduling event at %v before now %v", t, e.now))
	}
	if shard < 0 || shard >= len(e.launchedOn) {
		panic(fmt.Sprintf("parsim: shard %d out of range [0,%d)", shard, len(e.launchedOn)))
	}
	e.checkSchedule(shard, t)
	ev := &event{at: t, cfn: fn, a: a, b: b, seq: e.seq, shard: shard}
	e.seq++
	heap.Push(&e.heap, ev)
	return des.HandleFor(ev)
}

// After schedules fn to run d seconds from now as a global event.
func (e *Engine) After(d des.Time, fn func()) des.Handle {
	if d < 0 {
		panic(fmt.Sprintf("parsim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Cancel removes a scheduled event. Cancelling an event whose phase is in
// flight panics: the phase has already run, so the cancellation arrived
// later than the lookahead bound promised possible.
func (e *Engine) Cancel(h des.Handle) {
	ref := h.EventRef()
	if ref == nil {
		return
	}
	ev, ok := ref.(*event)
	if !ok {
		panic("parsim: Cancel of a handle from a different engine")
	}
	if ev.launched {
		panic("parsim: Cancel of an event whose phase is in flight (lookahead violation)")
	}
	if ev.pos < 0 {
		return
	}
	heap.Remove(&e.heap, ev.pos)
}

// Stop makes Run return before the next pop. Phases already in flight
// finish on their workers, but their commits are withheld (they apply if a
// later Run pops them) — so global state stops exactly where the
// sequential engine would stop; only the in-flight shards' local state has
// advanced. Apps that Exit from solo global events (reduction and
// quiescence callbacks — the idiomatic pattern) never have phases in
// flight at that point and observe identical behaviour on both backends.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue drains or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	defer e.shutdownPool()
	for !e.stopped && len(e.heap) > 0 {
		e.step(des.Forever)
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock
// to t (if it is ahead of the last event).
func (e *Engine) RunUntil(t des.Time) {
	e.stopped = false
	defer e.shutdownPool()
	for !e.stopped && len(e.heap) > 0 && e.heap[0].at <= t {
		e.step(t)
	}
	if e.now < t {
		e.now = t
	}
}

// step launches eligible phases, then pops and commits the next event in
// heap order. horizon (inclusive) bounds execution for RunUntil.
func (e *Engine) step(horizon des.Time) {
	e.launch(horizon)
	ev := heap.Pop(&e.heap).(*event)
	e.now = ev.at
	e.executed++

	if ev.shard < 0 {
		// A global event may touch every shard; the scan never launches
		// past one, and checkSchedule rejects late arrivals, so no phase
		// can be in flight here.
		if e.pending > 0 {
			e.drainLaunched()
			panic(fmt.Sprintf("parsim: internal: global event at t=%v popped with %d phases in flight", ev.at, e.pending))
		}
		e.stats.Global++
		ev.fn()
		if e.probe != nil {
			e.probe.EventExecuted(ev.shard, ev.at, len(e.heap))
		}
		return
	}

	if e.sink != nil {
		e.sink.PhaseStart(ev.shard, ev.at)
	}
	var commit func()
	var stallNs int64
	if ev.launched {
		e.launchedOn[ev.shard] = nil
		e.pending--
		if e.pending == 0 {
			e.maxLaunchedAt = 0
		}
		if e.probe != nil {
			t0 := e.probe.WallNow()
			<-ev.done
			stallNs = e.probe.WallNow() - t0
		} else {
			<-ev.done
		}
		e.stats.Launched++
		if ev.panicked {
			// Re-raise deterministically in pop order, not worker order.
			// No PhaseDone: the sequential engine panics out of sfn()
			// before reaching its PhaseDone too.
			e.drainLaunched()
			panic(ev.pval)
		}
		commit = ev.commit
	} else {
		e.stats.Inline++
		switch {
		case ev.cfn != nil:
			ev.cfn(ev.a, ev.b, ev.at)
		case ev.pfn != nil:
			commit = ev.pfn(ev.a, ev.b, ev.at)
		default:
			commit = ev.sfn()
		}
	}
	if commit != nil {
		commit()
	}
	if e.sink != nil {
		e.sink.PhaseDone(ev.shard, ev.at)
	}
	if e.probe != nil {
		if ev.launched {
			e.probe.PhaseWall(ev.shard, ev.at, e.probe.WallNow()-ev.launchNs, stallNs, false)
		}
		e.probe.EventExecuted(ev.shard, ev.at, len(e.heap))
	}
}

// launch scans the conservative window [top, top+L) and hands each shard's
// earliest pending event to the worker pool, stopping at the first global
// event in the window. The scan walks only the heap's window prefix (a
// pruned DFS over the heap array), so its cost is proportional to the
// window population.
func (e *Engine) launch(horizon des.Time) {
	if e.lookahead <= 0 || len(e.launchedOn) < 2 || len(e.heap) < 2 {
		return
	}
	limit := e.heap[0].at + e.lookahead
	var minGlobal *event
	e.stack = append(e.stack[:0], 0)
	e.touched = e.touched[:0]
	for len(e.stack) > 0 {
		i := e.stack[len(e.stack)-1]
		e.stack = e.stack[:len(e.stack)-1]
		ev := e.heap[i]
		if ev.at >= limit || ev.at > horizon {
			continue // children are no earlier: prune the subtree
		}
		if ev.shard < 0 {
			if minGlobal == nil || precedes(ev, minGlobal) {
				minGlobal = ev
			}
		} else if b := e.shardBest[ev.shard]; b == nil {
			e.shardBest[ev.shard] = ev
			e.touched = append(e.touched, ev.shard)
		} else if precedes(ev, b) {
			e.shardBest[ev.shard] = ev
		}
		if l := 2*i + 1; l < len(e.heap) {
			e.stack = append(e.stack, l)
		}
		if r := 2*i + 2; r < len(e.heap) {
			e.stack = append(e.stack, r)
		}
	}
	launchedBefore := e.pending
	for _, s := range e.touched {
		ev := e.shardBest[s]
		e.shardBest[s] = nil
		if ev.launched || ev == e.heap[0] {
			// Already in flight, or about to be popped anyway — the driver
			// runs the top inline and overlaps with the other launches.
			continue
		}
		if minGlobal != nil && precedes(minGlobal, ev) {
			continue
		}
		if ev.cfn != nil {
			// Commit-only bodies touch global state; they run inline on the
			// driver at pop. Leaving the shard unlaunched this scan keeps
			// same-shard ordering intact.
			continue
		}
		e.launchEvent(ev)
	}
	if e.probe != nil && e.pending == 0 && launchedBefore == 0 {
		// The window held work (the heap has >= 2 events; the scan ran) but
		// nothing could overlap the coming pop: the lookahead window
		// stalled the pipeline for this step.
		e.probe.WindowStall(e.heap[0].at)
	}
}

// launchEvent hands one event's phase to the worker pool.
func (e *Engine) launchEvent(ev *event) {
	if e.jobs == nil {
		e.jobs = make(chan *event, len(e.launchedOn))
		for w := 0; w < e.workers; w++ {
			e.poolWG.Add(1)
			//charmvet:parsim (phase workers execute provably independent events)
			go e.worker()
		}
	}
	ev.launched = true
	ev.done = make(chan struct{})
	e.launchedOn[ev.shard] = ev
	e.pending++
	if ev.at > e.maxLaunchedAt {
		e.maxLaunchedAt = ev.at
	}
	if e.pending > e.stats.MaxInFlight {
		e.stats.MaxInFlight = e.pending
	}
	if e.probe != nil {
		ev.launchNs = e.probe.WallNow()
	}
	e.jobs <- ev
}

// worker drains the job channel, running one phase at a time.
func (e *Engine) worker() {
	defer e.poolWG.Done()
	for ev := range e.jobs {
		runPhase(ev)
	}
}

// runPhase executes one event's phase, capturing panics so the driver can
// re-raise them in deterministic pop order.
func runPhase(ev *event) {
	defer close(ev.done)
	defer func() {
		if r := recover(); r != nil {
			ev.pval, ev.panicked = r, true
		}
	}()
	if ev.pfn != nil {
		ev.commit = ev.pfn(ev.a, ev.b, ev.at)
		return
	}
	ev.commit = ev.sfn()
}

// drainLaunched waits for every in-flight phase; their cached commits stay
// attached to their (still-pending) events.
func (e *Engine) drainLaunched() {
	for _, ev := range e.heap {
		if ev != nil && ev.launched {
			<-ev.done
		}
	}
}

// shutdownPool stops the workers after finishing all handed-out phases, so
// no goroutine outlives Run/RunUntil.
func (e *Engine) shutdownPool() {
	if e.jobs == nil {
		return
	}
	close(e.jobs)
	e.poolWG.Wait()
	e.jobs = nil
	e.drainLaunched()
}
