package parsim

import (
	"testing"
	"time"

	"charmgo/internal/des"
)

// mkEngine returns an engine with a lookahead window of 1.0 over `shards`
// shards — wide enough that admission is governed purely by the tests'
// chosen timestamps.
func mkEngine(shards, workers int) *Engine {
	return New(Options{Lookahead: 1.0, Shards: shards, Workers: workers})
}

// TestCommitOrderMatchesSequential schedules events across shards inside
// one window and checks the commit order is the (timestamp, seq) heap
// order, not the phase completion order.
func TestCommitOrderMatchesSequential(t *testing.T) {
	e := mkEngine(4, 4)
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		e.AtShard(i, 0.1+0.01*des.Time(i), func() func() {
			return func() { order = append(order, i) }
		})
	}
	e.Run()
	for i, got := range order {
		if got != i {
			t.Fatalf("commit order %v, want shards in timestamp order", order)
		}
	}
	if e.Executed() != 4 {
		t.Fatalf("executed %d, want 4", e.Executed())
	}
}

// TestPhasesRunConcurrently proves the pipeline actually fans out: the
// second event's phase is launched on a worker before the driver runs the
// top event's phase inline, so the two phases overlap by construction.
func TestPhasesRunConcurrently(t *testing.T) {
	e := mkEngine(2, 2)
	peerStarted := make(chan struct{})
	e.AtShard(0, 0.100, func() func() {
		select {
		case <-peerStarted: // the launched phase ran while we were running
		case <-time.After(5 * time.Second):
			t.Error("in-flight phase never started while the driver phase ran")
		}
		return nil
	})
	e.AtShard(1, 0.101, func() func() {
		close(peerStarted)
		return nil
	})
	e.Run()
}

// TestSpawnedContinuationsRunInOrder: a commit spawns a same-shard
// continuation whose timestamp precedes an event whose phase may already
// be in flight. The sequential order A(0.10), A'(0.11), B(0.12) must be
// preserved even though B's phase can run before A commits.
func TestSpawnedContinuationsRunInOrder(t *testing.T) {
	e := mkEngine(2, 2)
	var order []string
	e.AtShard(0, 0.10, func() func() {
		return func() {
			order = append(order, "A")
			e.AtShard(0, 0.11, func() func() {
				return func() { order = append(order, "A'") }
			})
		}
	})
	e.AtShard(1, 0.12, func() func() {
		return func() { order = append(order, "B") }
	})
	e.Run()
	want := []string{"A", "A'", "B"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("commit order %v, want %v", order, want)
		}
	}
	if e.Now() != 0.12 {
		t.Fatalf("clock %v after run, want 0.12", e.Now())
	}
}

// TestScheduleBeforeInFlightPhasePanics: a commit that schedules work
// preceding an in-flight phase on another shard means the lookahead bound
// was wrong; the engine must fail loudly instead of diverging.
func TestScheduleBeforeInFlightPhasePanics(t *testing.T) {
	e := mkEngine(2, 2)
	e.AtShard(0, 0.10, func() func() {
		return func() {
			// Shard 1's event at 0.11 is in flight; scheduling below it
			// violates the lookahead promise.
			e.AtShard(1, 0.105, func() func() { return nil })
		}
	})
	e.AtShard(1, 0.11, func() func() { return nil })
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling before an in-flight phase")
		}
	}()
	e.Run()
}

// TestGlobalScheduleBeforeInFlightPhasePanics: same violation, global
// flavour — a global event may touch any shard, so it must never be
// scheduled below a launched phase.
func TestGlobalScheduleBeforeInFlightPhasePanics(t *testing.T) {
	e := mkEngine(2, 2)
	e.AtShard(0, 0.10, func() func() {
		return func() {
			e.At(0.105, func() {})
		}
	})
	e.AtShard(1, 0.11, func() func() { return nil })
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling a global below an in-flight phase")
		}
	}()
	e.Run()
}

// TestGlobalEventsRunSolo: a global event never joins a batch, so it may
// freely touch all shards.
func TestGlobalEventsRunSolo(t *testing.T) {
	e := mkEngine(4, 4)
	var order []string
	e.AtShard(0, 0.10, func() func() { return func() { order = append(order, "s0") } })
	e.At(0.105, func() { order = append(order, "g") })
	e.AtShard(1, 0.11, func() func() { return func() { order = append(order, "s1") } })
	e.Run()
	want := []string{"s0", "g", "s1"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

// TestCancelPendingEvent works like the sequential engine; cancelling an
// event whose phase is in flight is a lookahead violation and panics.
func TestCancelPendingEvent(t *testing.T) {
	e := mkEngine(2, 2)
	var fired bool
	h := e.AtShard(1, 2.0, func() func() { fired = true; return nil })
	e.AtShard(0, 0.1, func() func() {
		return func() { e.Cancel(h) }
	})
	e.Run()
	if fired {
		t.Fatal("cancelled event still ran")
	}
	if e.Pending() != 0 {
		t.Fatalf("pending %d after run, want 0", e.Pending())
	}
}

func TestCancelInFlightPanics(t *testing.T) {
	e := mkEngine(2, 2)
	h := e.AtShard(1, 0.101, func() func() { return nil })
	e.AtShard(0, 0.1, func() func() {
		return func() { e.Cancel(h) }
	})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic cancelling an in-flight event")
		}
	}()
	e.Run()
}

// TestRunUntil bounds batches by the horizon and advances the clock.
func TestRunUntil(t *testing.T) {
	e := mkEngine(2, 2)
	var ran []des.Time
	for _, at := range []des.Time{0.1, 0.2, 0.9} {
		at := at
		e.AtShard(int(at*10)%2, at, func() func() {
			return func() { ran = append(ran, at) }
		})
	}
	e.RunUntil(0.5)
	if len(ran) != 2 {
		t.Fatalf("ran %v, want the two events <= 0.5", ran)
	}
	if e.Now() != 0.5 {
		t.Fatalf("clock %v, want 0.5", e.Now())
	}
	e.RunUntil(1.0)
	if len(ran) != 3 || e.Now() != 1.0 {
		t.Fatalf("ran %v now %v, want all three events and now=1.0", ran, e.Now())
	}
}

// TestStopWithholdsUncommittedPhases: Stop from a commit returns before
// the next pop; an in-flight phase finishes on its worker but its commit
// is withheld — global state stops exactly where the sequential engine
// would — and applies if a later Run pops the event.
func TestStopWithholdsUncommittedPhases(t *testing.T) {
	e := mkEngine(2, 2)
	var committed []int
	e.AtShard(0, 0.1, func() func() {
		return func() {
			committed = append(committed, 0)
			e.Stop()
		}
	})
	e.AtShard(1, 0.1001, func() func() {
		return func() { committed = append(committed, 1) }
	})
	e.Run()
	if len(committed) != 1 || committed[0] != 0 {
		t.Fatalf("committed %v after Stop, want [0]", committed)
	}
	e.Run() // resuming applies the cached commit in order
	if len(committed) != 2 || committed[1] != 1 {
		t.Fatalf("committed %v after resume, want [0 1]", committed)
	}
}

// TestPhasePanicPropagatesDeterministically: the first batch member (in
// heap order) that panics is the one re-raised, regardless of worker
// interleaving.
func TestPhasePanicPropagatesDeterministically(t *testing.T) {
	e := mkEngine(4, 4)
	for i := 0; i < 4; i++ {
		i := i
		e.AtShard(i, 0.1+0.001*des.Time(i), func() func() {
			if i >= 1 {
				panic(i)
			}
			return nil
		})
	}
	defer func() {
		if r := recover(); r != 1 {
			t.Fatalf("recovered %v, want panic value 1 (lowest panicking batch index)", r)
		}
	}()
	e.Run()
}
