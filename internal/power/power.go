// Package power implements the temperature-aware DVFS control of §III-C:
// the RTS samples per-chip temperatures periodically and uses DVFS to keep
// them under a threshold, while load balancing absorbs the heterogeneity
// that frequency scaling introduces. The policies mirror the Fig 4
// configurations: Base (no control), NaiveDVFS (DVFS without LB), periodic
// DVFS+LB, and MetaTemp (DVFS with cost/benefit-triggered LB).
package power

import (
	"charmgo/internal/charm"
	"charmgo/internal/des"
	"charmgo/internal/lb"
)

// Policy selects a Fig 4 configuration.
type Policy int

const (
	// Base runs uncontrolled: full frequency, no LB.
	Base Policy = iota
	// NaiveDVFS throttles hot chips but never rebalances.
	NaiveDVFS
	// DVFSWithLB throttles hot chips and rebalances every LBPeriod.
	DVFSWithLB
	// MetaTemp throttles hot chips and rebalances whenever the measured
	// benefit outweighs the cost (MetaLB trigger).
	MetaTemp
)

func (p Policy) String() string {
	switch p {
	case Base:
		return "Base"
	case NaiveDVFS:
		return "Naive_DVFS"
	case DVFSWithLB:
		return "DVFS+LB"
	case MetaTemp:
		return "MetaTemp"
	}
	return "?"
}

// Controller is the periodic temperature/DVFS loop.
type Controller struct {
	rt     *charm.Runtime
	policy Policy

	// ThresholdC is the chip temperature ceiling (50°C in Fig 4).
	ThresholdC float64
	// MarginC is the hysteresis band below the threshold within which
	// frequencies are held; below it they step back up.
	MarginC float64
	// SamplePeriod is the temperature sampling interval.
	SamplePeriod des.Time
	// LBPeriod is the rebalance interval for DVFSWithLB.
	LBPeriod des.Time

	meta    *lb.Meta
	lastLB  des.Time
	stopped bool
	history []Sample
}

// Sample is one controller observation.
type Sample struct {
	Time    des.Time
	MaxTemp float64
	MinFreq float64
	MaxFreq float64
}

// NewController builds the control loop for a runtime. It installs the
// policy's load-balancing strategy on the runtime.
func NewController(rt *charm.Runtime, policy Policy) *Controller {
	c := &Controller{
		rt:           rt,
		policy:       policy,
		ThresholdC:   50,
		MarginC:      3,
		SamplePeriod: 1.0,
		LBPeriod:     10,
	}
	switch policy {
	case DVFSWithLB:
		rt.SetBalancer(lb.Greedy{})
	case MetaTemp:
		c.meta = &lb.Meta{Inner: lb.Greedy{}, Threshold: 1.08}
		rt.SetBalancer(c.meta)
	default:
		rt.SetBalancer(nil)
	}
	return c
}

// History returns the recorded samples.
func (c *Controller) History() []Sample { return c.history }

// Start begins periodic sampling. The loop stops itself when the runtime
// exits or Stop is called.
func (c *Controller) Start() {
	c.tickLater()
}

// Stop halts the control loop after the current tick.
func (c *Controller) Stop() { c.stopped = true }

func (c *Controller) tickLater() {
	c.rt.Engine().After(c.SamplePeriod, c.tick)
}

func (c *Controller) tick() {
	if c.stopped || c.rt.Exited() {
		return
	}
	rt := c.rt
	m := rt.Machine()
	dt := float64(c.SamplePeriod)
	m.SampleUtilization(c.SamplePeriod)
	m.StepThermal(dt)

	if c.policy != Base {
		for n := 0; n < m.NumNodes(); n++ {
			node := m.Node(n)
			switch {
			case node.TempC() > c.ThresholdC:
				m.StepNodeFreq(n, -1)
			case node.TempC() < c.ThresholdC-c.MarginC:
				m.StepNodeFreq(n, +1)
			}
		}
	}

	// Rebalance if the policy says so. DVFS has changed PE speeds, which
	// the strategies see through the speed-aware LBView.
	now := rt.Now()
	switch c.policy {
	case DVFSWithLB:
		if now-c.lastLB >= c.LBPeriod {
			c.lastLB = now
			rt.Rebalance()
		}
	case MetaTemp:
		// Probe the imbalance cheaply first; the rebalance barrier is
		// only paid when the projected gain beats the cost and enough
		// time passed to amortize the previous one.
		objs, pes := rt.LBView()
		maxE, avgE := lb.Imbalance(objs, pes)
		if avgE > 0 && maxE/avgE > 1.15 && now-c.lastLB >= 3*c.SamplePeriod {
			c.lastLB = now
			rt.Rebalance()
		}
	}

	minF, maxF := 1e18, 0.0
	for n := 0; n < m.NumNodes(); n++ {
		f := m.Node(n).FreqGHz()
		if f < minF {
			minF = f
		}
		if f > maxF {
			maxF = f
		}
	}
	c.history = append(c.history, Sample{Time: now, MaxTemp: m.MaxTempC(), MinFreq: minF, MaxFreq: maxF})
	c.tickLater()
}
