package power

import (
	"testing"

	"charmgo/internal/charm"
	"charmgo/internal/machine"
	"charmgo/internal/pup"
)

// worker is an iterative compute chare: each Step message does fixed work
// and re-sends itself until the step budget is exhausted.
type worker struct {
	Steps int
	Work  float64
}

func (w *worker) Pup(p *pup.Pup) {
	p.Int(&w.Steps)
	p.Float64(&w.Work)
}

// runPolicy executes an iterative job under a policy, returning the total
// time and the hottest temperature observed.
func runPolicy(policy Policy, steps int) (float64, float64) {
	m := machine.New(machine.ThermalTestbed(4)) // 4 nodes x 4 PEs
	m.SpreadCooling(0.8, 1.35)
	rt := charm.New(m)
	var arr *charm.Array
	remaining := 0
	handlers := []charm.Handler{
		func(obj charm.Chare, ctx *charm.Ctx, msg any) {
			w := obj.(*worker)
			ctx.Charge(w.Work)
			w.Steps--
			if w.Steps > 0 {
				ctx.Send(arr, ctx.Index(), 0, nil)
				return
			}
			remaining--
			if remaining == 0 {
				ctx.Exit()
			}
		},
	}
	arr = rt.DeclareArray("workers", func() charm.Chare { return &worker{} }, handlers,
		charm.ArrayOpts{Migratable: true})
	const numObjs = 64
	remaining = numObjs
	for i := 0; i < numObjs; i++ {
		arr.InsertOn(charm.Idx1(i), &worker{Steps: steps, Work: 0.25}, i%rt.NumPEs())
	}
	ctl := NewController(rt, policy)
	ctl.Start()
	arr.Broadcast(0, nil)
	end := rt.Run()
	return float64(end), m.HottestEver()
}

func TestBaseOverheats(t *testing.T) {
	_, maxTemp := runPolicy(Base, 40)
	if maxTemp <= 55 {
		t.Fatalf("uncontrolled run peaked at only %.1f°C — thermal model too tame", maxTemp)
	}
}

func TestDVFSRestrainsTemperature(t *testing.T) {
	for _, pol := range []Policy{NaiveDVFS, DVFSWithLB, MetaTemp} {
		_, maxTemp := runPolicy(pol, 40)
		if maxTemp > 56 { // threshold 50 + overshoot slack
			t.Fatalf("%v peaked at %.1f°C, threshold is 50", pol, maxTemp)
		}
	}
}

func TestLBReducesDVFSTimingPenalty(t *testing.T) {
	// The Fig 4 ordering: Base fastest (but hot), NaiveDVFS slowest,
	// DVFS+LB in between, MetaTemp at least as good as periodic LB.
	base, _ := runPolicy(Base, 40)
	naive, _ := runPolicy(NaiveDVFS, 40)
	withLB, _ := runPolicy(DVFSWithLB, 40)
	meta, _ := runPolicy(MetaTemp, 40)
	if base >= naive {
		t.Fatalf("Base (%.1fs) should be fastest; NaiveDVFS %.1fs", base, naive)
	}
	if withLB >= naive {
		t.Fatalf("DVFS+LB (%.1fs) should beat NaiveDVFS (%.1fs)", withLB, naive)
	}
	if meta > naive {
		t.Fatalf("MetaTemp (%.1fs) should beat NaiveDVFS (%.1fs)", meta, naive)
	}
}

func TestControllerRecordsHistory(t *testing.T) {
	m := machine.New(machine.ThermalTestbed(2))
	rt := charm.New(m)
	ctl := NewController(rt, NaiveDVFS)
	ctl.SamplePeriod = 0.5
	ctl.Start()
	rt.Engine().At(5.2, func() { ctl.Stop() })
	rt.Engine().Run()
	if len(ctl.History()) < 8 {
		t.Fatalf("controller recorded %d samples over 5s at 0.5s period", len(ctl.History()))
	}
	for _, s := range ctl.History() {
		if s.MaxFreq < s.MinFreq {
			t.Fatalf("bad sample %+v", s)
		}
	}
}

func TestPolicyStrings(t *testing.T) {
	for pol, want := range map[Policy]string{
		Base: "Base", NaiveDVFS: "Naive_DVFS", DVFSWithLB: "DVFS+LB", MetaTemp: "MetaTemp",
	} {
		if pol.String() != want {
			t.Fatalf("%d.String() = %q", pol, pol.String())
		}
	}
}
