// Package des implements a deterministic discrete-event simulation engine.
//
// The engine is the foundation of the virtual parallel machine: every
// runtime action (message delivery, entry-method completion, timer expiry)
// is an event with a virtual timestamp. Events at equal timestamps are
// ordered by an insertion sequence number, which makes every simulation run
// bit-for-bit reproducible.
package des

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is virtual time in seconds since the start of the simulation.
type Time float64

// Forever is a timestamp later than any event the engine will execute.
const Forever Time = Time(math.MaxFloat64)

// Event is a closure scheduled to run at a virtual time.
type Event struct {
	At  Time
	Fn  func()
	seq uint64
	pos int // heap index, -1 when popped or cancelled
}

// Handle allows a scheduled event to be cancelled before it fires.
type Handle struct{ ev *Event }

// Cancelled reports whether Cancel was called on the handle's event, or the
// event already fired.
func (h Handle) Cancelled() bool { return h.ev == nil || h.ev.pos < 0 }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].pos = i
	h[j].pos = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.pos = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.pos = -1
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded deterministic event executor.
// The zero value is not usable; call NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	heap    eventHeap
	stopped bool
	// Executed counts events that have run, for introspection and tests.
	Executed uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of scheduled, uncancelled events.
func (e *Engine) Pending() int { return len(e.heap) }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it would silently reorder causality.
func (e *Engine) At(t Time, fn func()) Handle {
	if t < e.now {
		panic(fmt.Sprintf("des: scheduling event at %v before now %v", t, e.now))
	}
	ev := &Event{At: t, Fn: fn, seq: e.seq}
	e.seq++
	heap.Push(&e.heap, ev)
	return Handle{ev: ev}
}

// After schedules fn to run d seconds from now.
func (e *Engine) After(d Time, fn func()) Handle {
	if d < 0 {
		panic(fmt.Sprintf("des: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Cancel removes a scheduled event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Engine) Cancel(h Handle) {
	if h.ev == nil || h.ev.pos < 0 {
		return
	}
	heap.Remove(&e.heap, h.ev.pos)
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the single earliest event. It reports false when no events
// remain.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	ev := heap.Pop(&e.heap).(*Event)
	e.now = ev.At
	e.Executed++
	ev.Fn()
	return true
}

// Run executes events until the queue drains or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// t (if it is ahead of the last event). Events scheduled during execution
// are honoured if they fall within the horizon.
func (e *Engine) RunUntil(t Time) {
	e.stopped = false
	for !e.stopped && len(e.heap) > 0 && e.heap[0].At <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}
