// Package des implements a deterministic discrete-event simulation engine.
//
// The engine is the foundation of the virtual parallel machine: every
// runtime action (message delivery, entry-method completion, timer expiry)
// is an event with a virtual timestamp. Events at equal timestamps are
// ordered by an insertion sequence number, which makes every simulation run
// bit-for-bit reproducible.
//
// Three implementations exist: Sequential (this package) executes every
// event on the calling goroutine from a slab-allocated event store drained
// through a calendar queue; Heap (this package) is the original binary-heap
// executor, kept as the reference for differential order tests and for
// measuring the calendar engine's speedup; and internal/parsim executes
// provably independent events on worker goroutines while preserving the
// exact (timestamp, sequence) commit order. All satisfy the Engine
// interface and produce identical event orders.
package des

import "math"

// Time is virtual time in seconds since the start of the simulation.
type Time float64

// Forever is a timestamp later than any event the engine will execute.
const Forever Time = Time(math.MaxFloat64)

// PhaseFn is a preallocated two-phase event body. Engines call it at pop
// with the event's payload pair and timestamp; like the closure form it may
// touch only shard-local state and returns a commit closure (or nil) that
// runs with global state exclusively held. Schedulers pass a long-lived
// function value (typically a method value created once at startup) so the
// hot send path schedules without allocating a closure per event.
type PhaseFn func(a any, b int64, at Time) func()

// CommitFn is a preallocated commit-only event body: the whole event runs
// at commit position (global state allowed, no concurrent phase work).
// Message arrival — which must touch the location manager and quiescence
// state — uses this form.
type CommitFn func(a any, b int64, at Time)

// Engine is the scheduling interface the runtime depends on. All methods
// must be called from the simulation's driving goroutine (or from within an
// event's commit); engines are not thread-safe by design — parallelism, where
// available, lives inside the engine.
type Engine interface {
	// Now returns the current virtual time.
	Now() Time
	// Pending returns the number of scheduled, uncancelled events.
	Pending() int
	// Executed counts events that have run, for introspection and tests.
	Executed() uint64
	// At schedules fn to run at absolute virtual time t as a global event:
	// fn may touch any simulation state, so a parallel engine runs it alone.
	At(t Time, fn func()) Handle
	// AtShard schedules a two-phase event bound to a shard (a virtual
	// node). The phase function fn may touch only shard-local state and
	// must not call back into the engine; it returns a commit closure (or
	// nil) that the engine runs with global state exclusively held, in
	// exact (timestamp, sequence) order. A sequential engine runs phase
	// and commit back to back.
	AtShard(shard int, t Time, fn func() func()) Handle
	// AtShardFn is AtShard without the per-event closure: fn is a
	// long-lived PhaseFn invoked with (a, b, t) at pop.
	AtShardFn(shard int, t Time, fn PhaseFn, a any, b int64) Handle
	// AtShardCommit schedules a sharded event whose entire body runs at
	// commit position, again without a per-event closure.
	AtShardCommit(shard int, t Time, fn CommitFn, a any, b int64) Handle
	// After schedules fn to run d seconds from now as a global event.
	After(d Time, fn func()) Handle
	// Cancel removes a scheduled event. Cancelling an already-fired or
	// already-cancelled event is a no-op.
	Cancel(h Handle)
	// Stop makes Run return after the currently executing event completes.
	Stop()
	// Run executes events until the queue drains or Stop is called.
	Run()
	// RunUntil executes events with timestamps <= t, then advances the
	// clock to t (if it is ahead of the last event).
	RunUntil(t Time)
}

// HorizonReporter is implemented by engines that can report a safe
// scheduling horizon for *global* events: the earliest timestamp at which a
// new global event is guaranteed not to precede any phase the engine has
// already handed to a worker. The sequential engine's horizon is simply
// Now(); the parallel engine's is the high-water timestamp of its in-flight
// phases. Fault-recovery code uses this to schedule a rollback — a global
// event — from inside an event commit without tripping the parallel
// engine's lookahead guard.
type HorizonReporter interface {
	GlobalHorizon() Time
}

// EngineHorizon returns e's global-event scheduling horizon, falling back
// to Now() for engines that do not report one.
func EngineHorizon(e Engine) Time {
	if hr, ok := e.(HorizonReporter); ok {
		return hr.GlobalHorizon()
	}
	return e.Now()
}

// TraceSink receives engine-level execution events: the pop of each
// sharded event (PhaseStart) and the completion of its commit (PhaseDone).
// Engines call the sink only from the driving goroutine, in exact
// (timestamp, sequence) pop order — the same order on the sequential and
// parallel engines — so a recorder that logs calls as they arrive produces
// bit-identical traces on both backends. The projections tracer uses these
// events to measure how much phase parallelism a run exposes.
type TraceSink interface {
	PhaseStart(shard int, at Time)
	PhaseDone(shard int, at Time)
}

// SinkSetter is implemented by engines that can report phase events to a
// TraceSink. A nil sink (the default) disables reporting.
type SinkSetter interface {
	SetTraceSink(TraceSink)
}

// SpecSink extends TraceSink with the speculation pipeline of the
// optimistic (Time Warp) engine: a phase handed to a worker ahead of the
// commit frontier (SpecLaunch), a speculation whose result was used at its
// pop (SpecCommit), and a speculation undone by a straggler (SpecRollback).
// All calls arrive on the driving goroutine. Launch and rollback decisions
// depend only on heap state — never worker timing — so the call sequence
// is deterministic run-to-run for a given workload, though it exists only
// on the optimistic backend (conservative and sequential engines never
// speculate, so recording these events forfeits cross-backend trace
// identity; the projections tracer keeps them opt-in for that reason).
type SpecSink interface {
	TraceSink
	SpecLaunch(shard int, at Time)
	SpecCommit(shard int, at Time)
	SpecRollback(shard int, at Time)
}

// Probe is the engine's wall-clock telemetry interface, implemented by
// internal/telemetry. It is strictly side-band: engines call it to *report*
// what they decided and to obtain wall-clock stamps, and nothing a probe
// returns may influence scheduling — the digest of a run must be
// byte-identical with and without a probe installed. Engines therefore
// never read the wall clock themselves; the one clock in the tree lives
// behind WallNow, inside the telemetry package, where charmvet's
// //charmvet:telemetry waiver scopes it.
//
// All calls arrive on the driving goroutine. A nil probe (the default) is
// the fast path: every call site is guarded by a single pointer check.
type Probe interface {
	// WallNow returns a monotonic wall-clock reading in nanoseconds.
	// Engines use it to stamp launches and measure waits; the reference
	// point is the probe's own.
	WallNow() int64
	// EventExecuted is called after every executed event with the number
	// of still-pending events — the telemetry layer's heartbeat for
	// publish throttling and commit-queue-depth tracking.
	EventExecuted(shard int, at Time, pending int)
	// PhaseWall reports one worker-launched phase after its commit:
	// wallNs is launch→commit-done latency, stallNs the driver's wait for
	// the phase result at pop, speculative whether the launch ran ahead
	// of the commit frontier (optimistic backend).
	PhaseWall(shard int, at Time, wallNs, stallNs int64, speculative bool)
	// WindowStall reports a conservative launch scan that found events in
	// the lookahead window but could launch none of them.
	WindowStall(at Time)
	// SpecLaunched reports an optimistic launch and how far ahead of the
	// commit frontier (GVT) it ran.
	SpecLaunched(shard int, at Time, gvtLag Time)
	// SpecRolledBack reports an undone speculation; waitNs is the wall
	// time the driver spent waiting for the doomed phase to finish.
	SpecRolledBack(shard int, at Time, waitNs int64)
}

// ProbeSetter is implemented by engines that can report wall-clock
// telemetry to a Probe. A nil probe (the default) disables reporting.
type ProbeSetter interface {
	SetProbe(Probe)
}

// Ref is an engine-internal event reference held by a Handle.
type Ref interface {
	// Live reports whether the event is still scheduled.
	Live() bool
}

// Handle allows a scheduled event to be cancelled before it fires. Two
// representations exist: pointer-based engines (Heap, parsim) wrap a Ref;
// the slab-backed Sequential engine mints index+generation handles so the
// hot path never allocates.
type Handle struct {
	ev  Ref
	eng *Sequential
	id  uint64 // slot index << 32 | slot generation
}

// HandleFor wraps an engine's event reference; engine implementations use
// it to mint handles.
func HandleFor(r Ref) Handle { return Handle{ev: r} }

// EventRef returns the wrapped reference (nil for the zero Handle and for
// slab-backed handles).
func (h Handle) EventRef() Ref { return h.ev }

// Cancelled reports whether Cancel was called on the handle's event, or the
// event already fired.
func (h Handle) Cancelled() bool {
	if h.eng != nil {
		return !h.eng.live(h.id)
	}
	return h.ev == nil || !h.ev.Live()
}
