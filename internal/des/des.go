// Package des implements a deterministic discrete-event simulation engine.
//
// The engine is the foundation of the virtual parallel machine: every
// runtime action (message delivery, entry-method completion, timer expiry)
// is an event with a virtual timestamp. Events at equal timestamps are
// ordered by an insertion sequence number, which makes every simulation run
// bit-for-bit reproducible.
//
// Two implementations exist: Sequential (this package) executes every event
// on the calling goroutine, and internal/parsim executes provably
// independent events on worker goroutines while preserving the exact
// (timestamp, sequence) commit order. Both satisfy the Engine interface.
package des

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is virtual time in seconds since the start of the simulation.
type Time float64

// Forever is a timestamp later than any event the engine will execute.
const Forever Time = Time(math.MaxFloat64)

// Engine is the scheduling interface the runtime depends on. All methods
// must be called from the simulation's driving goroutine (or from within an
// event's commit); engines are not thread-safe by design — parallelism, where
// available, lives inside the engine.
type Engine interface {
	// Now returns the current virtual time.
	Now() Time
	// Pending returns the number of scheduled, uncancelled events.
	Pending() int
	// Executed counts events that have run, for introspection and tests.
	Executed() uint64
	// At schedules fn to run at absolute virtual time t as a global event:
	// fn may touch any simulation state, so a parallel engine runs it alone.
	At(t Time, fn func()) Handle
	// AtShard schedules a two-phase event bound to a shard (a virtual
	// node). The phase function fn may touch only shard-local state and
	// must not call back into the engine; it returns a commit closure (or
	// nil) that the engine runs with global state exclusively held, in
	// exact (timestamp, sequence) order. A sequential engine runs phase
	// and commit back to back.
	AtShard(shard int, t Time, fn func() func()) Handle
	// After schedules fn to run d seconds from now as a global event.
	After(d Time, fn func()) Handle
	// Cancel removes a scheduled event. Cancelling an already-fired or
	// already-cancelled event is a no-op.
	Cancel(h Handle)
	// Stop makes Run return after the currently executing event completes.
	Stop()
	// Run executes events until the queue drains or Stop is called.
	Run()
	// RunUntil executes events with timestamps <= t, then advances the
	// clock to t (if it is ahead of the last event).
	RunUntil(t Time)
}

// HorizonReporter is implemented by engines that can report a safe
// scheduling horizon for *global* events: the earliest timestamp at which a
// new global event is guaranteed not to precede any phase the engine has
// already handed to a worker. The sequential engine's horizon is simply
// Now(); the parallel engine's is the high-water timestamp of its in-flight
// phases. Fault-recovery code uses this to schedule a rollback — a global
// event — from inside an event commit without tripping the parallel
// engine's lookahead guard.
type HorizonReporter interface {
	GlobalHorizon() Time
}

// EngineHorizon returns e's global-event scheduling horizon, falling back
// to Now() for engines that do not report one.
func EngineHorizon(e Engine) Time {
	if hr, ok := e.(HorizonReporter); ok {
		return hr.GlobalHorizon()
	}
	return e.Now()
}

// TraceSink receives engine-level execution events: the pop of each
// sharded event (PhaseStart) and the completion of its commit (PhaseDone).
// Engines call the sink only from the driving goroutine, in exact
// (timestamp, sequence) pop order — the same order on the sequential and
// parallel engines — so a recorder that logs calls as they arrive produces
// bit-identical traces on both backends. The projections tracer uses these
// events to measure how much phase parallelism a run exposes.
type TraceSink interface {
	PhaseStart(shard int, at Time)
	PhaseDone(shard int, at Time)
}

// SinkSetter is implemented by engines that can report phase events to a
// TraceSink. A nil sink (the default) disables reporting.
type SinkSetter interface {
	SetTraceSink(TraceSink)
}

// Ref is an engine-internal event reference held by a Handle.
type Ref interface {
	// Live reports whether the event is still scheduled.
	Live() bool
}

// Handle allows a scheduled event to be cancelled before it fires.
type Handle struct{ ev Ref }

// HandleFor wraps an engine's event reference; engine implementations use
// it to mint handles.
func HandleFor(r Ref) Handle { return Handle{ev: r} }

// EventRef returns the wrapped reference (nil for the zero Handle).
func (h Handle) EventRef() Ref { return h.ev }

// Cancelled reports whether Cancel was called on the handle's event, or the
// event already fired.
func (h Handle) Cancelled() bool { return h.ev == nil || !h.ev.Live() }

// Event is a closure scheduled to run at a virtual time.
type Event struct {
	At    Time
	Fn    func()
	sfn   func() func() // sharded two-phase body (nil for global events)
	shard int           // shard id of a sharded event (unused for globals)
	seq   uint64
	pos   int // heap index, -1 when popped or cancelled
}

// Live reports whether the event is still scheduled.
func (ev *Event) Live() bool { return ev.pos >= 0 }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].pos = i
	h[j].pos = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.pos = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.pos = -1
	*h = old[:n-1]
	return ev
}

// Sequential is the single-threaded deterministic event executor.
// The zero value is not usable; call NewEngine.
type Sequential struct {
	now      Time
	seq      uint64
	heap     eventHeap
	stopped  bool
	executed uint64
	sink     TraceSink
}

// NewEngine returns a sequential engine with the clock at zero.
func NewEngine() *Sequential {
	return &Sequential{}
}

// Now returns the current virtual time.
func (e *Sequential) Now() Time { return e.now }

// Pending returns the number of scheduled, uncancelled events.
func (e *Sequential) Pending() int { return len(e.heap) }

// GlobalHorizon returns the earliest time a global event may be scheduled
// without reordering work already underway. The sequential engine never has
// work in flight, so its horizon is the current time.
func (e *Sequential) GlobalHorizon() Time { return e.now }

// Executed counts events that have run.
func (e *Sequential) Executed() uint64 { return e.executed }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it would silently reorder causality.
func (e *Sequential) At(t Time, fn func()) Handle {
	if t < e.now {
		panic(fmt.Sprintf("des: scheduling event at %v before now %v", t, e.now))
	}
	ev := &Event{At: t, Fn: fn, seq: e.seq}
	e.seq++
	heap.Push(&e.heap, ev)
	return HandleFor(ev)
}

// AtShard schedules a two-phase event; the sequential engine ignores the
// shard and runs phase and commit back to back, which makes the sharded
// path behaviourally identical to a plain At.
func (e *Sequential) AtShard(shard int, t Time, fn func() func()) Handle {
	if t < e.now {
		panic(fmt.Sprintf("des: scheduling event at %v before now %v", t, e.now))
	}
	ev := &Event{At: t, sfn: fn, shard: shard, seq: e.seq}
	e.seq++
	heap.Push(&e.heap, ev)
	return HandleFor(ev)
}

// After schedules fn to run d seconds from now.
func (e *Sequential) After(d Time, fn func()) Handle {
	if d < 0 {
		panic(fmt.Sprintf("des: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Cancel removes a scheduled event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Sequential) Cancel(h Handle) {
	ev, ok := h.ev.(*Event)
	if !ok || ev == nil || ev.pos < 0 {
		return
	}
	heap.Remove(&e.heap, ev.pos)
}

// Stop makes Run return after the currently executing event completes.
func (e *Sequential) Stop() { e.stopped = true }

// SetTraceSink installs (or, with nil, removes) the engine's phase-event
// sink. Install it before Run; the zero-sink path is a nil check.
func (e *Sequential) SetTraceSink(s TraceSink) { e.sink = s }

// Step executes the single earliest event. It reports false when no events
// remain.
func (e *Sequential) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	ev := heap.Pop(&e.heap).(*Event)
	e.now = ev.At
	e.executed++
	if ev.sfn != nil {
		if e.sink != nil {
			e.sink.PhaseStart(ev.shard, ev.At)
		}
		if commit := ev.sfn(); commit != nil {
			commit()
		}
		if e.sink != nil {
			e.sink.PhaseDone(ev.shard, ev.At)
		}
		return true
	}
	ev.Fn()
	return true
}

// Run executes events until the queue drains or Stop is called.
func (e *Sequential) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// t (if it is ahead of the last event). Events scheduled during execution
// are honoured if they fall within the horizon.
func (e *Sequential) RunUntil(t Time) {
	e.stopped = false
	for !e.stopped && len(e.heap) > 0 && e.heap[0].At <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}
