package des

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyEngine(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Fatal("Step on empty engine should report false")
	}
	if e.Now() != 0 {
		t.Fatalf("clock moved on empty engine: %v", e.Now())
	}
}

func TestOrdering(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, ts := range []Time{5, 1, 3, 2, 4} {
		ts := ts
		e.At(ts, func() { got = append(got, ts) })
	}
	e.Run()
	want := []Time{1, 2, 3, 4, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event order %v, want %v", got, want)
		}
	}
}

func TestFIFOTieBreak(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(7, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events reordered at %d: %v", i, got[i])
		}
	}
}

func TestAfterAndNow(t *testing.T) {
	e := NewEngine()
	var at1, at2 Time
	e.After(2, func() {
		at1 = e.Now()
		e.After(3, func() { at2 = e.Now() })
	})
	e.Run()
	if at1 != 2 || at2 != 5 {
		t.Fatalf("got times %v, %v; want 2, 5", at1, at2)
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	h := e.At(1, func() { fired = true })
	e.Cancel(h)
	if !h.Cancelled() {
		t.Fatal("handle should report cancelled")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Double cancel is a no-op.
	e.Cancel(h)
}

func TestCancelMiddleOfHeap(t *testing.T) {
	e := NewEngine()
	var got []Time
	var handles []Handle
	for _, ts := range []Time{1, 2, 3, 4, 5, 6, 7, 8} {
		ts := ts
		handles = append(handles, e.At(ts, func() { got = append(got, ts) }))
	}
	e.Cancel(handles[3]) // t=4
	e.Cancel(handles[6]) // t=7
	e.Run()
	want := []Time{1, 2, 3, 5, 6, 8}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 0; i < 10; i++ {
		e.At(Time(i), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("ran %d events after Stop, want 3", count)
	}
	e.Run() // resumes
	if count != 10 {
		t.Fatalf("resume ran to %d, want 10", count)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(Time(i), func() { count++ })
	}
	e.RunUntil(5)
	if count != 5 {
		t.Fatalf("RunUntil(5) ran %d events, want 5", count)
	}
	if e.Now() != 5 {
		t.Fatalf("clock %v, want 5", e.Now())
	}
	e.RunUntil(20)
	if count != 10 || e.Now() != 20 {
		t.Fatalf("count=%d now=%v, want 10, 20", count, e.Now())
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	e := NewEngine()
	e.RunUntil(42)
	if e.Now() != 42 {
		t.Fatalf("idle clock %v, want 42", e.Now())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past should panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestNegativeDelayPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("negative delay should panic")
		}
	}()
	e.After(-1, func() {})
}

func TestEventsScheduledDuringRun(t *testing.T) {
	e := NewEngine()
	depth := 0
	var rec func()
	rec = func() {
		depth++
		if depth < 50 {
			e.After(1, rec)
		}
	}
	e.After(1, rec)
	e.Run()
	if depth != 50 {
		t.Fatalf("chained depth %d, want 50", depth)
	}
	if e.Now() != 50 {
		t.Fatalf("clock %v, want 50", e.Now())
	}
}

func TestExecutedCounter(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 7; i++ {
		e.At(Time(i), func() {})
	}
	e.Run()
	if e.Executed() != 7 {
		t.Fatalf("Executed=%d, want 7", e.Executed())
	}
}

// Property: for any set of timestamps, execution order is the sorted order.
func TestPropertyExecutionSorted(t *testing.T) {
	f := func(stamps []uint16) bool {
		e := NewEngine()
		var got []Time
		for _, s := range stamps {
			ts := Time(s)
			e.At(ts, func() { got = append(got, ts) })
		}
		e.Run()
		return sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the engine is deterministic — two runs over the same schedule
// produce identical traces.
func TestPropertyDeterminism(t *testing.T) {
	trace := func(seed int64) []Time {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		var out []Time
		var spawn func(depth int)
		spawn = func(depth int) {
			out = append(out, e.Now())
			if depth < 3 {
				n := rng.Intn(3)
				for i := 0; i < n; i++ {
					e.After(Time(rng.Intn(5)), func() { spawn(depth + 1) })
				}
			}
		}
		for i := 0; i < 20; i++ {
			e.At(Time(rng.Intn(10)), func() { spawn(0) })
		}
		e.Run()
		return out
	}
	for seed := int64(0); seed < 10; seed++ {
		a, b := trace(seed), trace(seed)
		if len(a) != len(b) {
			t.Fatalf("seed %d: lengths differ", seed)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: traces diverge at %d", seed, i)
			}
		}
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			e.At(Time(j%97), func() {})
		}
		e.Run()
	}
}
