package des

import (
	"container/heap"
	"fmt"
)

// Heap is the original binary-heap sequential executor, retained as the
// reference implementation: the calendar-queue Sequential must produce the
// exact (timestamp, sequence) pop order this engine does (the differential
// tests enforce it), and the scale benchmarks measure the calendar engine's
// speedup against it in the same process, which makes the recorded ratio
// host-independent.
type Heap struct {
	now      Time
	seq      uint64
	heap     eventHeap
	stopped  bool
	executed uint64
	sink     TraceSink
}

// NewHeapEngine returns the reference binary-heap engine with the clock at
// zero.
func NewHeapEngine() *Heap {
	return &Heap{}
}

// Event is a closure scheduled to run at a virtual time (heap engine form).
type Event struct {
	At    Time
	Fn    func()
	sfn   func() func() // sharded two-phase body (nil for global events)
	pfn   PhaseFn
	cfn   CommitFn
	a     any
	b     int64
	shard int // shard id of a sharded event (unused for globals)
	seq   uint64
	pos   int // heap index, -1 when popped or cancelled
}

// Live reports whether the event is still scheduled.
func (ev *Event) Live() bool { return ev.pos >= 0 }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].pos = i
	h[j].pos = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.pos = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.pos = -1
	*h = old[:n-1]
	return ev
}

// Now returns the current virtual time.
func (e *Heap) Now() Time { return e.now }

// Pending returns the number of scheduled, uncancelled events.
func (e *Heap) Pending() int { return len(e.heap) }

// GlobalHorizon returns the current time: the heap engine never has work in
// flight.
func (e *Heap) GlobalHorizon() Time { return e.now }

// Executed counts events that have run.
func (e *Heap) Executed() uint64 { return e.executed }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it would silently reorder causality.
func (e *Heap) At(t Time, fn func()) Handle {
	if t < e.now {
		panic(fmt.Sprintf("des: scheduling event at %v before now %v", t, e.now))
	}
	ev := &Event{At: t, Fn: fn, seq: e.seq}
	e.seq++
	heap.Push(&e.heap, ev)
	return HandleFor(ev)
}

// AtShard schedules a two-phase event; phase and commit run back to back.
func (e *Heap) AtShard(shard int, t Time, fn func() func()) Handle {
	if t < e.now {
		panic(fmt.Sprintf("des: scheduling event at %v before now %v", t, e.now))
	}
	ev := &Event{At: t, sfn: fn, shard: shard, seq: e.seq}
	e.seq++
	heap.Push(&e.heap, ev)
	return HandleFor(ev)
}

// AtShardFn schedules a two-phase event from a preallocated PhaseFn.
func (e *Heap) AtShardFn(shard int, t Time, fn PhaseFn, a any, b int64) Handle {
	if t < e.now {
		panic(fmt.Sprintf("des: scheduling event at %v before now %v", t, e.now))
	}
	ev := &Event{At: t, pfn: fn, a: a, b: b, shard: shard, seq: e.seq}
	e.seq++
	heap.Push(&e.heap, ev)
	return HandleFor(ev)
}

// AtShardCommit schedules a commit-only sharded event from a preallocated
// CommitFn.
func (e *Heap) AtShardCommit(shard int, t Time, fn CommitFn, a any, b int64) Handle {
	if t < e.now {
		panic(fmt.Sprintf("des: scheduling event at %v before now %v", t, e.now))
	}
	ev := &Event{At: t, cfn: fn, a: a, b: b, shard: shard, seq: e.seq}
	e.seq++
	heap.Push(&e.heap, ev)
	return HandleFor(ev)
}

// After schedules fn to run d seconds from now.
func (e *Heap) After(d Time, fn func()) Handle {
	if d < 0 {
		panic(fmt.Sprintf("des: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Cancel removes a scheduled event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Heap) Cancel(h Handle) {
	ev, ok := h.ev.(*Event)
	if !ok || ev == nil || ev.pos < 0 {
		return
	}
	heap.Remove(&e.heap, ev.pos)
}

// Stop makes Run return after the currently executing event completes.
func (e *Heap) Stop() { e.stopped = true }

// SetTraceSink installs (or, with nil, removes) the engine's phase-event
// sink.
func (e *Heap) SetTraceSink(s TraceSink) { e.sink = s }

// Step executes the single earliest event. It reports false when no events
// remain.
func (e *Heap) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	ev := heap.Pop(&e.heap).(*Event)
	e.now = ev.At
	e.executed++
	if ev.Fn != nil {
		ev.Fn()
		return true
	}
	if e.sink != nil {
		e.sink.PhaseStart(ev.shard, ev.At)
	}
	switch {
	case ev.cfn != nil:
		ev.cfn(ev.a, ev.b, ev.At)
	case ev.pfn != nil:
		if commit := ev.pfn(ev.a, ev.b, ev.At); commit != nil {
			commit()
		}
	default:
		if commit := ev.sfn(); commit != nil {
			commit()
		}
	}
	if e.sink != nil {
		e.sink.PhaseDone(ev.shard, ev.At)
	}
	return true
}

// Run executes events until the queue drains or Stop is called.
func (e *Heap) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// t (if it is ahead of the last event).
func (e *Heap) RunUntil(t Time) {
	e.stopped = false
	for !e.stopped && len(e.heap) > 0 && e.heap[0].At <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}
