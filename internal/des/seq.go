package des

import (
	"fmt"
	"slices"
)

// The sequential engine's event store and queue, designed so the
// steady-state schedule→pop cycle allocates nothing:
//
//   - Events live in a slab ([]slot) recycled through an intrusive free
//     list; a Handle is a (slot index, generation) pair, so minting one
//     does not allocate and a recycled slot safely invalidates old handles.
//   - The pending set is a calendar queue keyed on virtual femtoseconds.
//     A span of fixed-width buckets covers the near future; events beyond
//     the span wait in an overflow list ("far") that reseeds — and retunes
//     the bucket width to the population's spread — each time the span
//     drains. Pushes into a future bucket are O(1) appends; a bucket is
//     sorted once when it opens; events landing in the already-open bucket
//     go through a small binary heap. Exact (timestamp, sequence)
//     comparisons decide order everywhere, so femtosecond truncation
//     collisions are harmless and the pop order is bit-identical to the
//     reference binary-heap engine's.

const (
	fsPerSec   = 1e15 // femtosecond resolution of the bucket key
	calBuckets = 1024
	// defaultWidthFS starts buckets at 1µs — the scale of the machine
	// models' network latencies — until the first reseed retunes it.
	defaultWidthFS = uint64(1e9)
	// maxWidthFS keeps span arithmetic (bucket count × width) overflow-free.
	maxWidthFS = uint64(1) << 62 / calBuckets
)

// toFS converts a timestamp to femtoseconds, saturating (Forever and
// anything else past the uint64 range map to the maximum key). The
// conversion is monotone, which is all bucket placement needs; ordering
// within and across buckets is decided by exact (at, seq) comparison.
func toFS(t Time) uint64 {
	f := float64(t) * fsPerSec
	if f >= 18446744073709549568.0 { // largest float64 below 2^64
		return ^uint64(0)
	}
	return uint64(f)
}

const (
	slotFree uint8 = iota
	slotQueued
	slotCancelled // lazily reclaimed when its queue position drains
)

// slot is one event's storage in the slab.
type slot struct {
	at    Time
	fn    func()        // global body
	sfn   func() func() // sharded two-phase body (closure form)
	pfn   PhaseFn       // sharded two-phase body (preallocated form)
	cfn   CommitFn      // sharded commit-only body
	a     any
	b     int64
	seq   uint64
	gen   uint32
	next  int32 // free-list link while free
	shard int32
	state uint8
}

// ordEnt is an event's sort key plus slot id, copied out of the slab so
// sorting and sifting touch a compact contiguous array.
type ordEnt struct {
	at  Time
	seq uint64
	id  int32
}

func entLess(x, y ordEnt) bool {
	if x.at != y.at {
		return x.at < y.at
	}
	return x.seq < y.seq
}

func entCmp(x, y ordEnt) int {
	if entLess(x, y) {
		return -1
	}
	if entLess(y, x) {
		return 1
	}
	return 0
}

// Sequential is the single-threaded deterministic event executor.
// The zero value is not usable; call NewEngine.
type Sequential struct {
	now      Time
	seq      uint64
	stopped  bool
	executed uint64
	sink     TraceSink
	probe    Probe

	slots []slot
	free  int32 // free-list head, -1 when empty
	count int   // scheduled, uncancelled events

	// Calendar state. buckets[cur] is open: its contents were sorted into
	// drain when it opened, and later arrivals for its time range sit in
	// curHeap. buckets[cur+1:] hold ring events; far holds everything past
	// the span.
	width    uint64 // fs per bucket
	spanBase uint64 // fs at buckets[0]'s start
	openEnd  uint64 // fs one past the open bucket's range
	spanEnd  uint64 // fs one past the last bucket's range
	cur      int    // open bucket index (-1 right after a reseed)
	buckets  [][]int32
	ring     int // events in buckets[cur+1:] (including cancelled)
	drain    []ordEnt
	drainPos int
	curHeap  []ordEnt
	far      []int32
}

// NewEngine returns a sequential engine with the clock at zero.
func NewEngine() *Sequential {
	e := &Sequential{
		free:    -1,
		width:   defaultWidthFS,
		buckets: make([][]int32, calBuckets),
	}
	e.openEnd = e.width
	e.spanEnd = uint64(calBuckets) * e.width
	return e
}

// Now returns the current virtual time.
func (e *Sequential) Now() Time { return e.now }

// Pending returns the number of scheduled, uncancelled events.
func (e *Sequential) Pending() int { return e.count }

// GlobalHorizon returns the earliest time a global event may be scheduled
// without reordering work already underway. The sequential engine never has
// work in flight, so its horizon is the current time.
func (e *Sequential) GlobalHorizon() Time { return e.now }

// Executed counts events that have run.
func (e *Sequential) Executed() uint64 { return e.executed }

// SetTraceSink installs (or, with nil, removes) the engine's phase-event
// sink. Install it before Run; the zero-sink path is a nil check.
func (e *Sequential) SetTraceSink(s TraceSink) { e.sink = s }

// SetProbe installs (or, with nil, removes) the engine's wall-clock
// telemetry probe. Install it before Run; the zero-probe path is a nil
// check per event.
func (e *Sequential) SetProbe(p Probe) { e.probe = p }

// live reports whether the packed handle id refers to a still-scheduled
// event.
func (e *Sequential) live(id uint64) bool {
	idx := int(id >> 32)
	if idx >= len(e.slots) {
		return false
	}
	s := &e.slots[idx]
	return s.gen == uint32(id) && s.state == slotQueued
}

// alloc takes a slot from the free list (or grows the slab) and stamps it
// with the event's time, shard, and the next sequence number.
func (e *Sequential) alloc(t Time, shard int32) int32 {
	var id int32
	if e.free >= 0 {
		id = e.free
		e.free = e.slots[id].next
	} else {
		e.slots = append(e.slots, slot{})
		id = int32(len(e.slots) - 1)
	}
	s := &e.slots[id]
	s.at = t
	s.seq = e.seq
	e.seq++
	s.shard = shard
	s.state = slotQueued
	return id
}

// reclaim returns a drained or cancelled slot to the free list.
func (e *Sequential) reclaim(id int32) {
	s := &e.slots[id]
	s.fn, s.sfn, s.pfn, s.cfn, s.a = nil, nil, nil, nil, nil
	s.state = slotFree
	s.next = e.free
	e.free = id
}

func (e *Sequential) handle(id int32) Handle {
	return Handle{eng: e, id: uint64(id)<<32 | uint64(e.slots[id].gen)}
}

// push files a freshly allocated slot into the calendar.
func (e *Sequential) push(id int32) {
	e.count++
	s := &e.slots[id]
	fs := toFS(s.at)
	if fs < e.openEnd {
		e.heapPush(ordEnt{at: s.at, seq: s.seq, id: id})
		return
	}
	// A saturated span end means the last bucket is a catch-all: fs keys at
	// the saturation point still belong inside the span.
	if fs < e.spanEnd || e.spanEnd == ^uint64(0) {
		b := int((fs - e.spanBase) / e.width)
		if b >= len(e.buckets) {
			b = len(e.buckets) - 1
		}
		e.buckets[b] = append(e.buckets[b], id)
		e.ring++
		return
	}
	e.far = append(e.far, id)
}

func (e *Sequential) heapPush(x ordEnt) {
	h := append(e.curHeap, x)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !entLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	e.curHeap = h
}

func (e *Sequential) heapPop() ordEnt {
	h := e.curHeap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l, r, m := 2*i+1, 2*i+2, i
		if l < n && entLess(h[l], h[m]) {
			m = l
		}
		if r < n && entLess(h[r], h[m]) {
			m = r
		}
		if m == i {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	e.curHeap = h
	return top
}

// openBucket sorts a bucket's live contents into the drain run.
func (e *Sequential) openBucket(ids []int32) {
	e.drain = e.drain[:0]
	e.drainPos = 0
	for _, id := range ids {
		s := &e.slots[id]
		if s.state == slotCancelled {
			e.reclaim(id)
			continue
		}
		e.drain = append(e.drain, ordEnt{at: s.at, seq: s.seq, id: id})
	}
	slices.SortFunc(e.drain, entCmp)
}

// advanceBucket moves to the next non-empty ring bucket and opens it.
// Callers guarantee ring > 0.
func (e *Sequential) advanceBucket() {
	for {
		e.cur++
		if e.cur >= len(e.buckets) {
			panic("des: calendar ring accounting broken")
		}
		if e.cur == len(e.buckets)-1 {
			// The tail bucket's range runs to the span end (which may be
			// saturated — see push), not just one width past its start.
			e.openEnd = e.spanEnd
		} else {
			e.openEnd = e.spanBase + uint64(e.cur+1)*e.width
		}
		ids := e.buckets[e.cur]
		if len(ids) == 0 {
			continue
		}
		e.ring -= len(ids)
		e.buckets[e.cur] = ids[:0]
		e.openBucket(ids)
		return
	}
}

// reseed rebuilds the span around the far population once the current span
// has fully drained, retuning the bucket width so the population spreads
// across the buckets.
func (e *Sequential) reseed() {
	// Pass 1: drop cancelled entries, find the population's fs range.
	live := e.far[:0]
	minFS, maxFS := ^uint64(0), uint64(0)
	for _, id := range e.far {
		s := &e.slots[id]
		if s.state == slotCancelled {
			e.reclaim(id)
			continue
		}
		fs := toFS(s.at)
		if fs < minFS {
			minFS = fs
		}
		if fs > maxFS {
			maxFS = fs
		}
		live = append(live, id)
	}
	e.far = live
	if len(live) == 0 {
		return
	}
	width := (maxFS-minFS)/uint64(len(e.buckets)) + 1
	if width > maxWidthFS {
		width = maxWidthFS
	}
	e.width = width
	e.spanBase = minFS
	e.spanEnd = minFS + uint64(len(e.buckets))*width
	if e.spanEnd < minFS { // saturate on wraparound
		e.spanEnd = ^uint64(0)
	}
	e.cur = -1
	e.openEnd = e.spanBase
	// Pass 2: distribute what the new span covers; the rest stays far.
	rest := e.far[:0]
	for _, id := range e.far {
		fs := toFS(e.slots[id].at)
		if fs < e.spanEnd || e.spanEnd == ^uint64(0) {
			b := int((fs - e.spanBase) / e.width)
			if b >= len(e.buckets) {
				b = len(e.buckets) - 1
			}
			e.buckets[b] = append(e.buckets[b], id)
			e.ring++
		} else {
			rest = append(rest, id)
		}
	}
	e.far = rest
	e.advanceBucket()
}

// peek normalizes the calendar until a head event is visible and returns
// it without consuming. src reports where it sits (0 drain, 1 curHeap).
func (e *Sequential) peek() (ent ordEnt, src int, ok bool) {
	for {
		for e.drainPos < len(e.drain) {
			d := e.drain[e.drainPos]
			if e.slots[d.id].state == slotCancelled {
				e.reclaim(d.id)
				e.drainPos++
				continue
			}
			break
		}
		for len(e.curHeap) > 0 {
			h := e.curHeap[0]
			if e.slots[h.id].state == slotCancelled {
				e.heapPop()
				e.reclaim(h.id)
				continue
			}
			break
		}
		hasD := e.drainPos < len(e.drain)
		hasH := len(e.curHeap) > 0
		switch {
		case hasD && hasH:
			if entLess(e.drain[e.drainPos], e.curHeap[0]) {
				return e.drain[e.drainPos], 0, true
			}
			return e.curHeap[0], 1, true
		case hasD:
			return e.drain[e.drainPos], 0, true
		case hasH:
			return e.curHeap[0], 1, true
		}
		if e.ring > 0 {
			e.advanceBucket()
			continue
		}
		if len(e.far) > 0 {
			e.reseed()
			continue
		}
		return ordEnt{}, 0, false
	}
}

// popID removes and returns the earliest live event's slot id.
func (e *Sequential) popID() (int32, bool) {
	ent, src, ok := e.peek()
	if !ok {
		return 0, false
	}
	if src == 0 {
		e.drainPos++
	} else {
		e.heapPop()
	}
	return ent.id, true
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it would silently reorder causality.
func (e *Sequential) At(t Time, fn func()) Handle {
	if t < e.now {
		panic(fmt.Sprintf("des: scheduling event at %v before now %v", t, e.now))
	}
	id := e.alloc(t, -1)
	e.slots[id].fn = fn
	e.push(id)
	return e.handle(id)
}

// AtShard schedules a two-phase event; the sequential engine ignores the
// shard and runs phase and commit back to back, which makes the sharded
// path behaviourally identical to a plain At.
func (e *Sequential) AtShard(shard int, t Time, fn func() func()) Handle {
	if t < e.now {
		panic(fmt.Sprintf("des: scheduling event at %v before now %v", t, e.now))
	}
	id := e.alloc(t, int32(shard))
	e.slots[id].sfn = fn
	e.push(id)
	return e.handle(id)
}

// AtShardFn schedules a two-phase event from a preallocated PhaseFn.
func (e *Sequential) AtShardFn(shard int, t Time, fn PhaseFn, a any, b int64) Handle {
	if t < e.now {
		panic(fmt.Sprintf("des: scheduling event at %v before now %v", t, e.now))
	}
	id := e.alloc(t, int32(shard))
	s := &e.slots[id]
	s.pfn, s.a, s.b = fn, a, b
	e.push(id)
	return e.handle(id)
}

// AtShardCommit schedules a commit-only sharded event from a preallocated
// CommitFn.
func (e *Sequential) AtShardCommit(shard int, t Time, fn CommitFn, a any, b int64) Handle {
	if t < e.now {
		panic(fmt.Sprintf("des: scheduling event at %v before now %v", t, e.now))
	}
	id := e.alloc(t, int32(shard))
	s := &e.slots[id]
	s.cfn, s.a, s.b = fn, a, b
	e.push(id)
	return e.handle(id)
}

// After schedules fn to run d seconds from now.
func (e *Sequential) After(d Time, fn func()) Handle {
	if d < 0 {
		panic(fmt.Sprintf("des: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Cancel removes a scheduled event. Cancelling an already-fired or
// already-cancelled event is a no-op. The slot is reclaimed lazily when its
// calendar position drains.
func (e *Sequential) Cancel(h Handle) {
	if h.eng != e || !e.live(h.id) {
		return
	}
	s := &e.slots[h.id>>32]
	s.state = slotCancelled
	s.gen++
	s.fn, s.sfn, s.pfn, s.cfn, s.a = nil, nil, nil, nil, nil
	e.count--
}

// Stop makes Run return after the currently executing event completes.
func (e *Sequential) Stop() { e.stopped = true }

// Step executes the single earliest event. It reports false when no events
// remain.
func (e *Sequential) Step() bool {
	id, ok := e.popID()
	if !ok {
		return false
	}
	e.count--
	s := &e.slots[id]
	at, shard := s.at, int(s.shard)
	fn, sfn, pfn, cfn := s.fn, s.sfn, s.pfn, s.cfn
	a, b := s.a, s.b
	s.fn, s.sfn, s.pfn, s.cfn, s.a = nil, nil, nil, nil, nil
	s.gen++
	s.state = slotFree
	s.next = e.free
	e.free = id
	e.now = at
	e.executed++
	switch {
	case fn != nil:
		fn()
	case cfn != nil:
		if e.sink != nil {
			e.sink.PhaseStart(shard, at)
		}
		cfn(a, b, at)
		if e.sink != nil {
			e.sink.PhaseDone(shard, at)
		}
	case pfn != nil:
		if e.sink != nil {
			e.sink.PhaseStart(shard, at)
		}
		if commit := pfn(a, b, at); commit != nil {
			commit()
		}
		if e.sink != nil {
			e.sink.PhaseDone(shard, at)
		}
	default:
		if e.sink != nil {
			e.sink.PhaseStart(shard, at)
		}
		if commit := sfn(); commit != nil {
			commit()
		}
		if e.sink != nil {
			e.sink.PhaseDone(shard, at)
		}
	}
	if e.probe != nil {
		e.probe.EventExecuted(shard, at, e.count)
	}
	return true
}

// Run executes events until the queue drains or Stop is called.
func (e *Sequential) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// t (if it is ahead of the last event). Events scheduled during execution
// are honoured if they fall within the horizon.
func (e *Sequential) RunUntil(t Time) {
	e.stopped = false
	for !e.stopped {
		ent, _, ok := e.peek()
		if !ok || ent.at > t {
			break
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}
