package des

import "testing"

// TestScheduleExecuteAllocFree pins the calendar engine's steady-state
// schedule+pop cycle at (near) zero heap allocations per event: events live
// in a slab-backed store with free-list recycling, the AtShardFn form takes
// a preallocated body instead of a closure, and handles are index+generation
// values. The calendar occasionally grows or reseeds a bucket as virtual
// time advances, so the budget is a small fraction of an allocation per
// event rather than exactly zero.
func TestScheduleExecuteAllocFree(t *testing.T) {
	e := NewEngine()
	remaining := 0
	var fn PhaseFn
	fn = func(a any, b int64, at Time) func() {
		if remaining > 0 {
			remaining--
			e.AtShardFn(0, at+1e-6, fn, nil, 0)
		}
		return nil
	}
	run := func(n int) {
		remaining = n
		e.AtShardFn(0, e.Now()+1e-6, fn, nil, 0)
		for e.Step() {
		}
	}
	run(20000) // warm the slab store and calendar buckets to working size

	const perRun = 200
	allocs := testing.AllocsPerRun(100, func() { run(perRun) })
	perEvent := allocs / (perRun + 1)
	t.Logf("schedule+pop allocs/event = %.4f", perEvent)
	if perEvent > 0.05 {
		t.Fatalf("schedule+pop allocates %.3f per event at steady state, want <= 0.05", perEvent)
	}
}
