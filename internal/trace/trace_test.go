package trace

import (
	"encoding/json"
	"strings"
	"testing"

	"charmgo/internal/charm"
	"charmgo/internal/machine"
	"charmgo/internal/malleable"
	"charmgo/internal/pup"
)

type worker struct{ Steps int }

func (w *worker) Pup(p *pup.Pup) { p.Int(&w.Steps) }

// imbalancedRun keeps PE 0 busy and the rest mostly idle for ~1s.
func imbalancedRun(t *testing.T, pes int) (*charm.Runtime, *Tracer) {
	t.Helper()
	rt := charm.New(machine.New(machine.Testbed(pes)))
	var arr *charm.Array
	handlers := []charm.Handler{
		func(obj charm.Chare, ctx *charm.Ctx, msg any) {
			w := obj.(*worker)
			ctx.Charge(0.05)
			w.Steps--
			if w.Steps > 0 {
				ctx.Send(arr, ctx.Index(), 0, nil)
			} else {
				ctx.Exit()
			}
		},
	}
	arr = rt.DeclareArray("w", func() charm.Chare { return &worker{} }, handlers,
		charm.ArrayOpts{Migratable: true})
	arr.InsertOn(charm.Idx1(0), &worker{Steps: 20}, 0)
	tr := New(rt, 0.1)
	tr.Start()
	arr.Send(charm.Idx1(0), 0, nil)
	rt.Run()
	return rt, tr
}

func TestSamplesRecorded(t *testing.T) {
	_, tr := imbalancedRun(t, 4)
	if len(tr.Samples()) < 8 {
		t.Fatalf("only %d samples over ~1s at 0.1s period", len(tr.Samples()))
	}
	for _, s := range tr.Samples() {
		if len(s.Util) != 4 {
			t.Fatalf("sample has %d PEs", len(s.Util))
		}
		for _, u := range s.Util {
			if u < 0 || u > 1 {
				t.Fatalf("utilization %v out of range", u)
			}
		}
	}
}

func TestHotPEIdentified(t *testing.T) {
	_, tr := imbalancedRun(t, 4)
	pe, util := tr.HottestPE()
	if pe != 0 {
		t.Fatalf("hottest PE %d, want 0", pe)
	}
	if util < 0.8 {
		t.Fatalf("PE 0 utilization %v, expected near 1", util)
	}
	if mean := tr.MeanUtilization(); mean > 0.5 {
		t.Fatalf("mean utilization %v should reflect 3 idle PEs", mean)
	}
}

func TestSummaryAndTimelineRender(t *testing.T) {
	_, tr := imbalancedRun(t, 4)
	sum := tr.Summary()
	if !strings.Contains(sum, "mean") || len(strings.Split(sum, "\n")) < 5 {
		t.Fatalf("summary too small:\n%s", sum)
	}
	tl := tr.Timeline(0)
	lines := strings.Split(strings.TrimSpace(tl), "\n")
	if len(lines) != 4 {
		t.Fatalf("timeline rows %d, want 4:\n%s", len(lines), tl)
	}
	// PE 0's row should be dense, PE 3's near-empty.
	if !strings.ContainsAny(lines[0], "#%@") {
		t.Fatalf("busy PE row has no dense glyphs: %q", lines[0])
	}
	if strings.ContainsAny(lines[3], "#%@") {
		t.Fatalf("idle PE row is dense: %q", lines[3])
	}
}

func TestTimelineAggregatesRows(t *testing.T) {
	_, tr := imbalancedRun(t, 16)
	tl := tr.Timeline(4)
	lines := strings.Split(strings.TrimSpace(tl), "\n")
	if len(lines) != 4 {
		t.Fatalf("aggregated timeline rows %d, want 4:\n%s", len(lines), tl)
	}
}

func TestLoadProfile(t *testing.T) {
	rt, _ := imbalancedRun(t, 4)
	top := LoadProfile(rt, 5)
	if len(top) != 1 {
		t.Fatalf("profile has %d objects, want 1", len(top))
	}
	if top[0].Load <= 0 {
		t.Fatal("top object has no load")
	}
}

func TestStop(t *testing.T) {
	rt := charm.New(machine.New(machine.Testbed(2)))
	tr := New(rt, 0.1)
	tr.Start()
	rt.Engine().At(0.35, func() { tr.Stop() })
	rt.Engine().RunUntil(2.0)
	if n := len(tr.Samples()); n > 4 {
		t.Fatalf("tracer kept sampling after Stop: %d samples", n)
	}
}

func TestEmptyTracer(t *testing.T) {
	rt := charm.New(machine.New(machine.Testbed(2)))
	tr := New(rt, 0.1)
	if pe, _ := tr.HottestPE(); pe != -1 {
		t.Fatal("empty tracer should report no hottest PE")
	}
	if tr.Timeline(0) == "" || tr.MeanUtilization() != 0 {
		t.Fatal("empty tracer rendering broken")
	}
}

// A shrink mid-trace must not change the shape of subsequent samples: the
// tracer samples every physical PE, so Util stays MaxPEs wide before and
// after the reconfiguration and lastBusy never misaligns with the window.
func TestShrinkMidTrace(t *testing.T) {
	rt := charm.New(machine.New(machine.Testbed(8)))
	var arr *charm.Array
	handlers := []charm.Handler{
		func(obj charm.Chare, ctx *charm.Ctx, msg any) {
			w := obj.(*worker)
			ctx.Charge(0.05)
			w.Steps--
			if w.Steps > 0 {
				ctx.Send(arr, ctx.Index(), 0, nil)
			} else {
				ctx.Exit()
			}
		},
	}
	arr = rt.DeclareArray("w", func() charm.Chare { return &worker{} }, handlers,
		charm.ArrayOpts{Migratable: true})
	arr.InsertOn(charm.Idx1(0), &worker{Steps: 20}, 0)
	tr := New(rt, 0.1)
	tr.Start()
	malleable.NewManager(rt).RequestAt(0.42, 4)
	arr.Send(charm.Idx1(0), 0, nil)
	rt.Run()

	if rt.NumPEs() != 4 {
		t.Fatalf("shrink did not take: %d active PEs", rt.NumPEs())
	}
	samples := tr.Samples()
	if len(samples) < 8 {
		t.Fatalf("only %d samples across the shrink", len(samples))
	}
	for i, s := range samples {
		if len(s.Util) != rt.MaxPEs() {
			t.Fatalf("sample %d has %d PEs, want MaxPEs=%d (shape changed mid-trace)",
				i, len(s.Util), rt.MaxPEs())
		}
		for p, u := range s.Util {
			if u < 0 || u > 1 {
				t.Fatalf("sample %d PE %d utilization %v out of range", i, p, u)
			}
		}
	}
	// Evacuated PEs read as idle after the shrink.
	last := samples[len(samples)-1]
	for p := 4; p < 8; p++ {
		if last.Util[p] != 0 {
			t.Errorf("evacuated PE %d shows %v utilization after shrink", p, last.Util[p])
		}
	}
}

// Golden renders: Summary and Timeline are consumed by scripts and eyes
// alike, so their exact shape is locked here against a hand-built trace.
func goldenTracer() *Tracer {
	return &Tracer{
		interval: 0.1,
		samples: []Sample{
			{At: 0.1, Util: []float64{1.0, 0.0}, Msgs: 7},
			{At: 0.2, Util: []float64{0.5, 0.25}, Msgs: 3},
			{At: 0.3, Util: []float64{0.0, 1.0}, Msgs: 0},
		},
	}
}

func TestSummaryGolden(t *testing.T) {
	got := goldenTracer().Summary()
	want := "t(s)       mean     min      max      msgs\n" +
		"0.1000     0.50     0.00     1.00     7\n" +
		"0.2000     0.38     0.25     0.50     3\n" +
		"0.3000     0.50     0.00     1.00     0\n"
	if got != want {
		t.Fatalf("summary drifted from golden:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestTimelineGolden(t *testing.T) {
	got := goldenTracer().Timeline(0)
	want := "PE   0      |@= |\n" +
		"PE   1      | :@|\n"
	if got != want {
		t.Fatalf("timeline drifted from golden:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestWriteJSON(t *testing.T) {
	_, tr := imbalancedRun(t, 4)
	var buf strings.Builder
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		IntervalSeconds float64 `json:"interval_seconds"`
		NumPEs          int     `json:"num_pes"`
		Samples         []struct {
			At   float64   `json:"t"`
			Util []float64 `json:"util"`
			Msgs uint64    `json:"msgs"`
		} `json:"samples"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc.NumPEs != 4 || doc.IntervalSeconds != 0.1 {
		t.Fatalf("header: %+v", doc)
	}
	if len(doc.Samples) == 0 || len(doc.Samples[0].Util) != 4 {
		t.Fatalf("samples malformed: %d", len(doc.Samples))
	}
}
