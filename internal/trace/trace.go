// Package trace provides Projections-style performance introspection for
// the runtime: periodic sampling of per-PE utilization and message rates,
// with summaries and an ASCII timeline. The introspective control system
// of §III-E is built on exactly this kind of continuously collected
// performance data; this package makes the same observations available to
// users and tests.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"charmgo/internal/charm"
	"charmgo/internal/des"
)

// Sample is one observation window.
type Sample struct {
	// At is the window's end time.
	At des.Time
	// Util is the per-PE busy fraction during the window, in [0,1].
	Util []float64
	// Msgs is the number of messages delivered during the window.
	Msgs uint64
}

// Tracer samples a runtime on a fixed virtual period.
type Tracer struct {
	rt       *charm.Runtime
	interval des.Time

	lastBusy []des.Time
	lastMsgs uint64
	samples  []Sample
	stopped  bool
}

// New creates a tracer sampling every interval seconds of virtual time.
func New(rt *charm.Runtime, interval des.Time) *Tracer {
	return &Tracer{
		rt:       rt,
		interval: interval,
		lastBusy: make([]des.Time, rt.MaxPEs()),
	}
}

// Start begins sampling; the tracer stops itself when the runtime exits or
// Stop is called.
func (t *Tracer) Start() { t.tickLater() }

// Stop halts sampling after the current tick.
func (t *Tracer) Stop() { t.stopped = true }

func (t *Tracer) tickLater() {
	t.rt.Engine().After(t.interval, t.tick)
}

func (t *Tracer) tick() {
	if t.stopped || t.rt.Exited() {
		return
	}
	// Sample every physical PE, not just the currently active ones: the
	// active count changes across a malleability shrink/expand, and a
	// mid-trace change would leave lastBusy misaligned with the sampled
	// window (and samples with inconsistent Util lengths). Inactive PEs
	// accumulate no busy time, so they simply read as 0.
	m := t.rt.Machine()
	n := len(t.lastBusy)
	util := make([]float64, n)
	for p := 0; p < n; p++ {
		busy := m.PE(p).BusyTime
		u := float64(busy-t.lastBusy[p]) / float64(t.interval)
		if u > 1 {
			u = 1
		}
		if u < 0 {
			u = 0
		}
		util[p] = u
		t.lastBusy[p] = busy
	}
	msgs := t.rt.Stats.MsgsDelivered
	t.samples = append(t.samples, Sample{
		At:   t.rt.Now(),
		Util: util,
		Msgs: msgs - t.lastMsgs,
	})
	t.lastMsgs = msgs
	t.tickLater()
}

// Samples returns the recorded windows.
func (t *Tracer) Samples() []Sample { return t.samples }

// MeanUtilization returns the run-wide average busy fraction.
func (t *Tracer) MeanUtilization() float64 {
	total, n := 0.0, 0
	for _, s := range t.samples {
		for _, u := range s.Util {
			total += u
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

// HottestPE returns the PE with the highest cumulative utilization and its
// mean busy fraction.
func (t *Tracer) HottestPE() (pe int, util float64) {
	if len(t.samples) == 0 {
		return -1, 0
	}
	sums := make([]float64, len(t.samples[0].Util))
	for _, s := range t.samples {
		for p, u := range s.Util {
			if p < len(sums) {
				sums[p] += u
			}
		}
	}
	pe = 0
	for p, s := range sums {
		if s > sums[pe] {
			pe = p
		}
	}
	return pe, sums[pe] / float64(len(t.samples))
}

// Summary renders a per-window table: time, mean/min/max utilization,
// message throughput.
func (t *Tracer) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-8s %-8s %-8s %s\n", "t(s)", "mean", "min", "max", "msgs")
	for _, s := range t.samples {
		mean, min, max := 0.0, 1.0, 0.0
		for _, u := range s.Util {
			mean += u
			if u < min {
				min = u
			}
			if u > max {
				max = u
			}
		}
		if len(s.Util) > 0 {
			mean /= float64(len(s.Util))
		}
		fmt.Fprintf(&b, "%-10.4f %-8.2f %-8.2f %-8.2f %d\n", float64(s.At), mean, min, max, s.Msgs)
	}
	return b.String()
}

// utilGlyphs maps utilization to density characters.
var utilGlyphs = []rune(" .:-=+*#%@")

// Timeline renders an ASCII utilization heat map: one row per PE (up to
// maxPEs rows, aggregating if there are more), one column per sample.
func (t *Tracer) Timeline(maxPEs int) string {
	if len(t.samples) == 0 {
		return "(no samples)\n"
	}
	n := len(t.samples[0].Util)
	rows := n
	group := 1
	if maxPEs > 0 && n > maxPEs {
		group = (n + maxPEs - 1) / maxPEs
		rows = (n + group - 1) / group
	}
	var b strings.Builder
	for r := 0; r < rows; r++ {
		lo, hi := r*group, (r+1)*group
		if hi > n {
			hi = n
		}
		fmt.Fprintf(&b, "PE%4d%s |", lo, rangeSuffix(lo, hi))
		for _, s := range t.samples {
			u := 0.0
			for p := lo; p < hi && p < len(s.Util); p++ {
				u += s.Util[p]
			}
			u /= float64(hi - lo)
			g := int(u * float64(len(utilGlyphs)-1))
			b.WriteRune(utilGlyphs[g])
		}
		b.WriteString("|\n")
	}
	return b.String()
}

func rangeSuffix(lo, hi int) string {
	if hi-lo <= 1 {
		return "     "
	}
	return fmt.Sprintf("-%-4d", hi-1)
}

// LoadProfile summarizes the current per-object load database: the top-k
// heaviest migratable objects.
func LoadProfile(rt *charm.Runtime, k int) []charm.LBObject {
	objs, _ := rt.LBView()
	sort.Slice(objs, func(i, j int) bool {
		if objs[i].Load != objs[j].Load {
			return objs[i].Load > objs[j].Load
		}
		return objs[i].Idx.Less(objs[j].Idx)
	})
	if k > 0 && len(objs) > k {
		objs = objs[:k]
	}
	return objs
}

// jsonDoc is the export schema.
type jsonDoc struct {
	IntervalSeconds float64      `json:"interval_seconds"`
	NumPEs          int          `json:"num_pes"`
	Samples         []jsonSample `json:"samples"`
}

type jsonSample struct {
	At   float64   `json:"t"`
	Util []float64 `json:"util"`
	Msgs uint64    `json:"msgs"`
}

// WriteJSON exports the trace for external visualization tools.
func (t *Tracer) WriteJSON(w io.Writer) error {
	doc := jsonDoc{
		IntervalSeconds: float64(t.interval),
		NumPEs:          t.rt.MaxPEs(),
	}
	for _, s := range t.samples {
		doc.Samples = append(doc.Samples, jsonSample{
			At: float64(s.At), Util: s.Util, Msgs: s.Msgs,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
