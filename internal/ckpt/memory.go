package ckpt

import (
	"errors"
	"fmt"
	"sort"

	"charmgo/internal/charm"
	"charmgo/internal/des"
	"charmgo/internal/pup"
)

// Typed recovery errors. Callers (the chaos controller, application
// drivers) branch on these with errors.Is to distinguish recoverable
// conditions from protocol violations.
var (
	// ErrNoCheckpoint: recovery was requested before any in-memory
	// checkpoint was taken.
	ErrNoCheckpoint = errors.New("ckpt: no in-memory checkpoint to recover from")
	// ErrPEOutOfRange: the failed PE id is not a valid PE of this runtime.
	ErrPEOutOfRange = errors.New("ckpt: failed PE out of range")
	// ErrRecoveryInProgress: FailAndRecover (the instantaneous
	// convenience API) was called while a two-step recovery window was
	// open. The controller restarts an in-flight recovery through
	// PlanRecovery/StartRecovery instead.
	ErrRecoveryInProgress = errors.New("ckpt: recovery already in progress")
	// ErrAllReplicasLost: every holder of a failed PE's checkpoint shard
	// has itself failed since the last checkpoint. The data is gone; only
	// a disk checkpoint (or a rerun) can help.
	ErrAllReplicasLost = errors.New("ckpt: every replica of the failed PE's checkpoint shard is lost")
)

// ErrBuddyFailed is the degree-1 name of ErrAllReplicasLost, kept so
// existing errors.Is call sites keep matching: with a single remote copy,
// "the buddy died too" and "all replicas are lost" are the same event.
var ErrBuddyFailed = ErrAllReplicasLost

// BuddyOf is the classic double in-memory scheme's buddy mapping as a
// pure function: the first ring successor. It equals ReplicasOf(pe, n,
// 1)[0] and is shared with operator tooling (cmd/ckptinfo) so the printed
// map is the one the restore path actually uses.
func BuddyOf(pe, numPEs int) int { return (pe + 1) % numPEs }

// ReplicasOf is the degree-r generalization of BuddyOf: the deterministic
// replica holder set of pe's checkpoint shard is its next r ring
// successors. r is clamped to numPEs-1 (a PE never holds its own remote
// copy).
func ReplicasOf(pe, numPEs, r int) []int {
	if numPEs <= 1 || r <= 0 {
		return nil
	}
	if r > numPEs-1 {
		r = numPEs - 1
	}
	out := make([]int, 0, r)
	for i := 1; len(out) < r; i++ {
		out = append(out, (pe+i)%numPEs)
	}
	return out
}

// ReplicaMemoryBytes returns, for a degree-r replication of s over n PEs,
// the worst per-PE resident checkpoint bytes (own shard plus the r shards
// it holds for others) and the cluster-wide total. Operators use it to
// judge the R-vs-memory tradeoff before raising the degree.
func ReplicaMemoryBytes(s *Snapshot, numPEs, r int) (worstPE, total int64) {
	per := s.PerPEBytes(numPEs)
	resident := make([]int64, numPEs)
	for pe := 0; pe < numPEs; pe++ {
		resident[pe] += per[pe]
		for _, h := range ReplicasOf(pe, numPEs, r) {
			resident[h] += per[pe]
		}
	}
	for _, b := range resident {
		total += b
		if b > worstPE {
			worstPE = b
		}
	}
	return worstPE, total
}

// MemCheckpointTime models a degree-r in-memory checkpoint of s on n PEs:
// every PE serializes its shard once and ships r copies to its holders,
// in parallel across PEs, followed by a barrier.
func MemCheckpointTime(s *Snapshot, numPEs, r int, tm TimeModel) des.Time {
	per := s.PerPEBytes(numPEs)
	var worst float64
	for _, b := range per {
		t := float64(b)/tm.SerializeBW + float64(r)*float64(b)/tm.MemBW
		if t > worst {
			worst = t
		}
	}
	return des.Time(tm.Base/3 + worst + tm.Barrier)
}

// RecoveryPlan is the liveness decision of one restore attempt: which PEs
// are being restored and which holder streams each one's shard. It is
// computed by PlanRecovery BEFORE the runtime revives dead PEs, so the
// decision cannot race the revive order.
type RecoveryPlan struct {
	// Failed is the sorted, deduplicated set of PEs being restored.
	Failed []int
	// Sources is parallel to Failed: the live replica holder chosen to
	// stream each failed PE's shard (the nearest ring successor whose
	// copy survives).
	Sources []int
	// Fallbacks counts holders that were skipped because they were dead
	// or had lost their copies — nonzero only when R > 1 saved the run.
	Fallbacks int
}

// Mem implements degree-R in-memory checkpointing, generalizing the
// double scheme of FTC-Charm++ (§III-B): each PE keeps a checkpoint of
// its own chares in local memory and a copy of each of R predecessors'
// shards. When a PE fails, a replacement PE receives the shard from the
// nearest live holder and every PE rolls back to the last checkpoint, so
// execution continues without touching the file system. R=1 is the
// classic buddy ring.
//
// Mem owns the replica-liveness bookkeeping: the controller reports
// physical crashes through NoteFailure, and PlanRecovery decides — from
// the holder table of the last checkpoint and the crashes seen since —
// which copies still exist. A PE that crashed loses its resident copies
// even if a replacement process has already taken its slot; copies come
// back only when a recovery's restore streams re-seed them
// (FinishRecovery) or a fresh checkpoint is taken.
type Mem struct {
	rt    *charm.Runtime
	model TimeModel

	degree int // R: remote copies per PE (>=1)

	snap    *Snapshot // the logical content of the distributed checkpoints
	holders [][]int   // per PE, the shard's holder set at the last checkpoint
	lost    map[int]bool
	doomed  map[int]bool

	// recovering is set between StartRecovery and FinishRecovery.
	recovering bool
	failedPEs  []int

	// Checkpoints and Restarts count completed operations;
	// RestartedRestores counts restore attempts that superseded an
	// in-flight one (a failure landed mid-restore).
	Checkpoints       int
	Restarts          int
	RestartedRestores int
}

// NewMem creates the in-memory checkpointer for a runtime at degree 1.
func NewMem(rt *charm.Runtime) *Mem {
	return &Mem{rt: rt, model: DefaultModel(rt.NumPEs()), degree: 1,
		lost: map[int]bool{}, doomed: map[int]bool{}}
}

// SetModel overrides the timing model.
func (m *Mem) SetModel(tm TimeModel) { m.model = tm }

// SetDegree sets the replication degree R (clamped to [1, numPEs-1]).
// It applies from the next Checkpoint; the holder table of an existing
// checkpoint is immutable.
func (m *Mem) SetDegree(r int) {
	if r < 1 {
		r = 1
	}
	if max := m.rt.NumPEs() - 1; r > max && max >= 1 {
		r = max
	}
	m.degree = r
}

// Degree returns the replication degree R.
func (m *Mem) Degree() int { return m.degree }

// Doom excludes pe from (or, with false, readmits it to) the holder sets
// of future checkpoints: a PE predicted to fail must not be handed
// anyone's only surviving copy. Takes effect at the next Checkpoint.
func (m *Mem) Doom(pe int, doomed bool) {
	if doomed {
		m.doomed[pe] = true
	} else {
		delete(m.doomed, pe)
	}
}

// NoteFailure records that pe physically crashed: every checkpoint copy
// resident in its memory — its own shard and the replica shards it held —
// is gone until restore streams or a fresh checkpoint re-seed it. Call at
// the crash instant, not at detection, so the liveness decision reflects
// physical reality.
func (m *Mem) NoteFailure(pe int) { m.lost[pe] = true }

// Buddy returns the first (nearest) holder of pe's shard — the classic
// buddy. After a checkpoint it reads the recorded holder table (which may
// skip doomed PEs); before any checkpoint it is the default ring mapping.
func (m *Mem) Buddy(pe int) int {
	if m.holders != nil && pe < len(m.holders) && len(m.holders[pe]) > 0 {
		return m.holders[pe][0]
	}
	return BuddyOf(pe, m.rt.NumPEs())
}

// Holders returns pe's shard holder set as of the last checkpoint (nil
// before the first).
func (m *Mem) Holders(pe int) []int {
	if m.holders == nil || pe >= len(m.holders) {
		return nil
	}
	return m.holders[pe]
}

// Checkpoint takes a degree-R in-memory checkpoint (CkStartMemCheckpoint)
// and returns its modeled duration: every PE serializes its elements once
// and ships R copies to its holder set, in parallel, followed by a
// barrier. A successful checkpoint re-establishes full redundancy: the
// lost-copy ledger is cleared.
func (m *Mem) Checkpoint() des.Time {
	m.snap = Capture(m.rt)
	m.Checkpoints++
	m.rt.Metrics().Counter("ckpt.mem_checkpoints").Inc()
	n := m.rt.NumPEs()
	m.holders = make([][]int, n)
	for pe := 0; pe < n; pe++ {
		hs := make([]int, 0, m.degree)
		for i := 1; i < n && len(hs) < m.degree; i++ {
			h := (pe + i) % n
			if m.doomed[h] {
				continue
			}
			hs = append(hs, h)
		}
		m.holders[pe] = hs
	}
	m.lost = map[int]bool{}
	return MemCheckpointTime(m.snap, n, m.degree, m.model)
}

// HasCheckpoint reports whether a checkpoint exists to recover from.
func (m *Mem) HasCheckpoint() bool { return m.snap != nil }

// Recovering reports whether a StartRecovery is awaiting FinishRecovery,
// and for which PEs.
func (m *Mem) Recovering() (bool, []int) { return m.recovering, m.failedPEs }

// Snapshot returns the current checkpoint content (nil before the first
// Checkpoint). Read-only: tools such as cmd/ckptinfo inspect it.
func (m *Mem) Snapshot() *Snapshot { return m.snap }

// PlanRecovery chooses, for each failed PE, the nearest holder whose copy
// of that PE's shard still exists: not in the failed set, not currently
// dead, and not recorded lost since the last checkpoint. It MUST be
// called before the runtime revives the dead PEs (RecoverReset), so the
// liveness it sees is the physical state at the decision instant — this
// is what makes the choice race-free against the revive order.
//
// It returns ErrAllReplicasLost (wrapped, naming the PE) when a failed
// PE's entire holder set is gone, and is callable while a previous
// restore is still in flight: restarting recovery against the surviving
// replica set is exactly the overlapping-failure path.
func (m *Mem) PlanRecovery(failed []int) (*RecoveryPlan, error) {
	if m.snap == nil {
		return nil, ErrNoCheckpoint
	}
	n := m.rt.NumPEs()
	set := map[int]bool{}
	plan := &RecoveryPlan{}
	for _, pe := range failed {
		if pe < 0 || pe >= n {
			return nil, fmt.Errorf("%w: PE %d", ErrPEOutOfRange, pe)
		}
		if !set[pe] {
			set[pe] = true
			plan.Failed = append(plan.Failed, pe)
		}
	}
	if len(plan.Failed) == 0 {
		return nil, fmt.Errorf("ckpt: plan recovery: empty failed set")
	}
	sort.Ints(plan.Failed)
	for _, pe := range plan.Failed {
		hs := m.Holders(pe)
		src := -1
		for i, h := range hs {
			if set[h] || m.lost[h] || m.rt.PEDead(h) {
				continue
			}
			src = h
			plan.Fallbacks += i
			break
		}
		if src < 0 {
			return nil, fmt.Errorf("ckpt: PE %d (holders %v): %w", pe, hs, ErrAllReplicasLost)
		}
		plan.Sources = append(plan.Sources, src)
	}
	if plan.Fallbacks > 0 {
		m.rt.Metrics().Counter("ckpt.replica_fallbacks").Add(uint64(plan.Fallbacks))
	}
	return plan, nil
}

// StartRecovery executes the restore for a planned recovery: replacement
// PEs take the failed PEs' identities, their shards are reconstructed
// from the plan's source holders, and every other chare rolls back to the
// last checkpoint. It returns the modeled restart duration; the caller
// advances virtual time by that much and then calls FinishRecovery to
// close the window.
//
// Calling it while a previous restore window is open RESTARTS recovery:
// the superseded attempt's streams are abandoned (counted in
// RestartedRestores) and the window continues under the new plan — the
// back-to-back restart cost is the sum of both modeled durations, which
// the caller accumulates by stalling twice.
//
// Restart uses several consistency barriers, which is why its cost grows
// with PE count even as per-PE data shrinks (Fig 10). The restore streams
// double as re-replication: when FinishRecovery closes the window, every
// shard is once again held at full degree.
func (m *Mem) StartRecovery(plan *RecoveryPlan) (des.Time, error) {
	if m.snap == nil {
		return 0, ErrNoCheckpoint
	}
	if m.recovering {
		m.RestartedRestores++
		m.rt.Metrics().Counter("ckpt.restore_restarts").Inc()
	}
	m.recovering = true
	m.failedPEs = append([]int(nil), plan.Failed...)
	m.Restarts++
	m.rt.Metrics().Counter("ckpt.mem_restarts").Inc()
	if h := m.rt.Trace(); h != nil {
		h.Checkpoint(m.rt.Now(), "restore", int(m.snap.TotalBytes()))
	}

	// Roll every element back to the checkpoint, placing it on its
	// checkpoint-time PE (replacements inherit the failed PEs' ids).
	for _, as := range m.snap.Arrays {
		arr := m.rt.ArrayByName(as.Name)
		if arr == nil {
			m.recovering = false
			return 0, fmt.Errorf("ckpt: recover: array %q not declared", as.Name)
		}
		inSnap := map[charm.Index]bool{}
		for _, es := range as.Elems {
			inSnap[es.Idx] = true
			obj := arr.NewElement()
			if err := pup.Unpack(es.Data, obj); err != nil {
				m.recovering = false
				return 0, fmt.Errorf("ckpt: recover %s%v: %w", as.Name, es.Idx, err)
			}
			if arr.Get(es.Idx) != nil {
				arr.Replace(es.Idx, obj, es.PE)
			} else {
				arr.InsertOn(es.Idx, obj, es.PE)
			}
		}
		// Elements created after the checkpoint are rolled away.
		for _, idx := range arr.Keys() {
			if !inSnap[idx] {
				arr.Remove(idx)
			}
		}
	}

	// Timing: each source holder streams its failed partner's shard to
	// the replacement (streams from distinct holders run concurrently; a
	// holder serving two replacements serializes them); everyone else
	// restores locally; then several barriers re-establish consistency.
	per := m.snap.PerPEBytes(m.rt.NumPEs())
	var worstLocal float64
	for _, b := range per {
		if t := float64(b) / m.model.SerializeBW; t > worstLocal {
			worstLocal = t
		}
	}
	perSource := map[int]float64{}
	var worstStream float64
	for i, pe := range plan.Failed {
		var b float64
		if pe < len(per) {
			b = float64(per[pe])
		}
		src := plan.Sources[i]
		perSource[src] += b/m.model.MemBW + b/m.model.SerializeBW
		if perSource[src] > worstStream {
			worstStream = perSource[src]
		}
	}
	barriers := 4*m.model.Barrier + m.model.CoordPerPE*float64(m.rt.NumPEs())/8
	return des.Time(m.model.Base/2 + worstLocal + worstStream + barriers), nil
}

// FinishRecovery closes the recovery window opened by StartRecovery.
// The restore streams re-seeded every replica slot, so the lost-copy
// ledger is cleared: redundancy is back at full degree. Failures reported
// after this point start a fresh recovery.
func (m *Mem) FinishRecovery() {
	m.recovering = false
	m.failedPEs = nil
	m.lost = map[int]bool{}
}

// FailAndRecover simulates the hard failure of a PE and an instantaneous
// recovery: PlanRecovery and StartRecovery immediately followed by
// FinishRecovery. It returns the modeled restart duration. Callers that
// advance virtual time across the restore (the chaos controller) use the
// multi-step API so that mid-restore failures restart the protocol.
func (m *Mem) FailAndRecover(failedPE int) (des.Time, error) {
	if m.recovering {
		return 0, fmt.Errorf("%w (recovering PEs %v, new failure on PE %d)",
			ErrRecoveryInProgress, m.failedPEs, failedPE)
	}
	plan, err := m.PlanRecovery([]int{failedPE})
	if err != nil {
		return 0, err
	}
	d, err := m.StartRecovery(plan)
	if err != nil {
		return 0, err
	}
	m.FinishRecovery()
	return d, nil
}
