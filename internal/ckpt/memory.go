package ckpt

import (
	"errors"
	"fmt"

	"charmgo/internal/charm"
	"charmgo/internal/des"
	"charmgo/internal/pup"
)

// Typed recovery errors. Callers (the chaos controller, application
// drivers) branch on these with errors.Is to distinguish recoverable
// conditions from protocol violations.
var (
	// ErrNoCheckpoint: recovery was requested before any in-memory
	// checkpoint was taken.
	ErrNoCheckpoint = errors.New("ckpt: no in-memory checkpoint to recover from")
	// ErrPEOutOfRange: the failed PE id is not a valid PE of this runtime.
	ErrPEOutOfRange = errors.New("ckpt: failed PE out of range")
	// ErrRecoveryInProgress: a second failure was reported while a
	// previous recovery had not yet completed (FinishRecovery not called).
	// The double-buddy scheme tolerates one failure per checkpoint epoch;
	// overlapping failures of unrelated PEs abort the protocol rather than
	// silently double-restarting.
	ErrRecoveryInProgress = errors.New("ckpt: recovery already in progress")
	// ErrBuddyFailed: while restoring a failed PE, its buddy — the sole
	// holder of the remote checkpoint copy — failed too. The checkpoint
	// data is lost; only a disk checkpoint (or a rerun) can help.
	ErrBuddyFailed = errors.New("ckpt: buddy PE failed during restore; checkpoint copy lost")
)

// Mem implements the double in-memory checkpointing of FTC-Charm++
// (§III-B): each PE keeps a checkpoint of its own chares in local memory
// and a copy of its buddy PE's checkpoint. When a PE fails, a replacement
// PE receives the buddy copy and every PE rolls back to the last
// checkpoint, so execution continues without touching the file system.
type Mem struct {
	rt    *charm.Runtime
	model TimeModel

	snap *Snapshot // the logical content of the distributed checkpoints

	// recovering is set between StartRecovery and FinishRecovery; a
	// second failure reported in that window is a protocol error
	// (ErrRecoveryInProgress), or fatal if it hits the buddy streaming
	// the restore (ErrBuddyFailed).
	recovering   bool
	recoveringPE int

	// Checkpoints and Restarts count completed operations.
	Checkpoints int
	Restarts    int
}

// NewMem creates the in-memory checkpointer for a runtime.
func NewMem(rt *charm.Runtime) *Mem {
	return &Mem{rt: rt, model: DefaultModel(rt.NumPEs())}
}

// SetModel overrides the timing model.
func (m *Mem) SetModel(tm TimeModel) { m.model = tm }

// Buddy returns the PE holding pe's remote checkpoint copy.
func (m *Mem) Buddy(pe int) int { return BuddyOf(pe, m.rt.NumPEs()) }

// BuddyOf is the double in-memory scheme's buddy mapping as a pure
// function, shared with operator tooling (cmd/ckptinfo) so the printed
// map is the one the restore path actually uses.
func BuddyOf(pe, numPEs int) int { return (pe + 1) % numPEs }

// Checkpoint takes a double in-memory checkpoint (CkStartMemCheckpoint)
// and returns its modeled duration: every PE serializes its elements and
// ships a copy to its buddy, in parallel, followed by a barrier.
func (m *Mem) Checkpoint() des.Time {
	m.snap = Capture(m.rt)
	m.Checkpoints++
	m.rt.Metrics().Counter("ckpt.mem_checkpoints").Inc()
	per := m.snap.PerPEBytes(m.rt.NumPEs())
	var worst float64
	for _, b := range per {
		t := float64(b)/m.model.SerializeBW + float64(b)/m.model.MemBW
		if t > worst {
			worst = t
		}
	}
	return des.Time(m.model.Base/3 + worst + m.model.Barrier)
}

// HasCheckpoint reports whether a checkpoint exists to recover from.
func (m *Mem) HasCheckpoint() bool { return m.snap != nil }

// Recovering reports whether a StartRecovery is awaiting FinishRecovery,
// and for which PE.
func (m *Mem) Recovering() (bool, int) { return m.recovering, m.recoveringPE }

// Snapshot returns the current checkpoint content (nil before the first
// Checkpoint). Read-only: tools such as cmd/ckptinfo inspect it.
func (m *Mem) Snapshot() *Snapshot { return m.snap }

// StartRecovery begins the recovery protocol for a failed PE: a
// replacement PE takes the failed PE's identity, its chares are
// reconstructed from the buddy's copy, and every other chare rolls back
// to the last checkpoint. It returns the modeled restart duration; the
// caller advances virtual time by that much and then calls
// FinishRecovery to close the window.
//
// While the window is open a second reported failure returns
// ErrBuddyFailed if it hits the failed PE's buddy (the checkpoint copy
// being streamed is lost) and ErrRecoveryInProgress otherwise.
//
// Restart uses several consistency barriers, which is why its cost grows
// with PE count even as per-PE data shrinks (Fig 10).
func (m *Mem) StartRecovery(failedPE int) (des.Time, error) {
	if m.recovering {
		if failedPE == m.Buddy(m.recoveringPE) {
			return 0, fmt.Errorf("%w (PE %d failed while restoring PE %d)",
				ErrBuddyFailed, failedPE, m.recoveringPE)
		}
		return 0, fmt.Errorf("%w (recovering PE %d, new failure on PE %d)",
			ErrRecoveryInProgress, m.recoveringPE, failedPE)
	}
	if m.snap == nil {
		return 0, ErrNoCheckpoint
	}
	if failedPE < 0 || failedPE >= m.rt.NumPEs() {
		return 0, fmt.Errorf("%w: PE %d", ErrPEOutOfRange, failedPE)
	}
	m.recovering = true
	m.recoveringPE = failedPE
	m.Restarts++
	m.rt.Metrics().Counter("ckpt.mem_restarts").Inc()
	if h := m.rt.Trace(); h != nil {
		h.Checkpoint(m.rt.Now(), "restore", int(m.snap.TotalBytes()))
	}

	// Roll every element back to the checkpoint, placing it on its
	// checkpoint-time PE (the replacement inherits the failed PE's id).
	for _, as := range m.snap.Arrays {
		arr := m.rt.ArrayByName(as.Name)
		if arr == nil {
			m.recovering = false
			return 0, fmt.Errorf("ckpt: recover: array %q not declared", as.Name)
		}
		inSnap := map[charm.Index]bool{}
		for _, es := range as.Elems {
			inSnap[es.Idx] = true
			obj := arr.NewElement()
			if err := pup.Unpack(es.Data, obj); err != nil {
				m.recovering = false
				return 0, fmt.Errorf("ckpt: recover %s%v: %w", as.Name, es.Idx, err)
			}
			if arr.Get(es.Idx) != nil {
				arr.Replace(es.Idx, obj, es.PE)
			} else {
				arr.InsertOn(es.Idx, obj, es.PE)
			}
		}
		// Elements created after the checkpoint are rolled away.
		for _, idx := range arr.Keys() {
			if !inSnap[idx] {
				arr.Remove(idx)
			}
		}
	}

	// Timing: the buddy streams the failed PE's checkpoint to the
	// replacement; everyone else restores locally; then several barriers
	// re-establish a consistent state.
	per := m.snap.PerPEBytes(m.rt.NumPEs())
	failedBytes := float64(per[failedPE])
	var worstLocal float64
	for _, b := range per {
		if t := float64(b) / m.model.SerializeBW; t > worstLocal {
			worstLocal = t
		}
	}
	buddyStream := failedBytes/m.model.MemBW + failedBytes/m.model.SerializeBW
	barriers := 4*m.model.Barrier + m.model.CoordPerPE*float64(m.rt.NumPEs())/8
	return des.Time(m.model.Base/2 + worstLocal + buddyStream + barriers), nil
}

// FinishRecovery closes the recovery window opened by StartRecovery.
// Failures reported after this point start a fresh recovery.
func (m *Mem) FinishRecovery() {
	m.recovering = false
	m.recoveringPE = 0
}

// FailAndRecover simulates the hard failure of a PE and an instantaneous
// recovery: StartRecovery immediately followed by FinishRecovery. It
// returns the modeled restart duration. Callers that advance virtual
// time across the restore (the chaos controller) use the two-step API so
// that mid-restore failures are detected.
func (m *Mem) FailAndRecover(failedPE int) (des.Time, error) {
	d, err := m.StartRecovery(failedPE)
	if err != nil {
		return 0, err
	}
	m.FinishRecovery()
	return d, nil
}
