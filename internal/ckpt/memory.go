package ckpt

import (
	"fmt"

	"charmgo/internal/charm"
	"charmgo/internal/des"
	"charmgo/internal/pup"
)

// Mem implements the double in-memory checkpointing of FTC-Charm++
// (§III-B): each PE keeps a checkpoint of its own chares in local memory
// and a copy of its buddy PE's checkpoint. When a PE fails, a replacement
// PE receives the buddy copy and every PE rolls back to the last
// checkpoint, so execution continues without touching the file system.
type Mem struct {
	rt    *charm.Runtime
	model TimeModel

	snap *Snapshot // the logical content of the distributed checkpoints

	// Checkpoints and Restarts count completed operations.
	Checkpoints int
	Restarts    int
}

// NewMem creates the in-memory checkpointer for a runtime.
func NewMem(rt *charm.Runtime) *Mem {
	return &Mem{rt: rt, model: DefaultModel(rt.NumPEs())}
}

// SetModel overrides the timing model.
func (m *Mem) SetModel(tm TimeModel) { m.model = tm }

// Buddy returns the PE holding pe's remote checkpoint copy.
func (m *Mem) Buddy(pe int) int { return (pe + 1) % m.rt.NumPEs() }

// Checkpoint takes a double in-memory checkpoint (CkStartMemCheckpoint)
// and returns its modeled duration: every PE serializes its elements and
// ships a copy to its buddy, in parallel, followed by a barrier.
func (m *Mem) Checkpoint() des.Time {
	m.snap = Capture(m.rt)
	m.Checkpoints++
	m.rt.Metrics().Counter("ckpt.mem_checkpoints").Inc()
	per := m.snap.perPEBytes(m.rt.NumPEs())
	var worst float64
	for _, b := range per {
		t := float64(b)/m.model.SerializeBW + float64(b)/m.model.MemBW
		if t > worst {
			worst = t
		}
	}
	return des.Time(m.model.Base/3 + worst + m.model.Barrier)
}

// HasCheckpoint reports whether a checkpoint exists to recover from.
func (m *Mem) HasCheckpoint() bool { return m.snap != nil }

// FailAndRecover simulates the hard failure of a PE and the recovery
// protocol: a replacement PE takes the failed PE's identity, its chares are
// reconstructed from the buddy's copy, and every other chare rolls back to
// the last checkpoint. It returns the modeled restart duration.
//
// Restart uses several consistency barriers, which is why its cost grows
// with PE count even as per-PE data shrinks (Fig 10).
func (m *Mem) FailAndRecover(failedPE int) (des.Time, error) {
	if m.snap == nil {
		return 0, fmt.Errorf("ckpt: no in-memory checkpoint to recover from")
	}
	if failedPE < 0 || failedPE >= m.rt.NumPEs() {
		return 0, fmt.Errorf("ckpt: failed PE %d out of range", failedPE)
	}
	m.Restarts++
	m.rt.Metrics().Counter("ckpt.mem_restarts").Inc()
	if h := m.rt.Trace(); h != nil {
		h.Checkpoint(m.rt.Now(), "restore", int(m.snap.TotalBytes()))
	}

	// Roll every element back to the checkpoint, placing it on its
	// checkpoint-time PE (the replacement inherits the failed PE's id).
	for _, as := range m.snap.Arrays {
		arr := m.rt.ArrayByName(as.Name)
		if arr == nil {
			return 0, fmt.Errorf("ckpt: recover: array %q not declared", as.Name)
		}
		inSnap := map[charm.Index]bool{}
		for _, es := range as.Elems {
			inSnap[es.Idx] = true
			obj := arr.NewElement()
			if err := pup.Unpack(es.Data, obj); err != nil {
				return 0, fmt.Errorf("ckpt: recover %s%v: %w", as.Name, es.Idx, err)
			}
			if arr.Get(es.Idx) != nil {
				arr.Replace(es.Idx, obj, es.PE)
			} else {
				arr.InsertOn(es.Idx, obj, es.PE)
			}
		}
		// Elements created after the checkpoint are rolled away.
		for _, idx := range arr.Keys() {
			if !inSnap[idx] {
				arr.Remove(idx)
			}
		}
	}

	// Timing: the buddy streams the failed PE's checkpoint to the
	// replacement; everyone else restores locally; then several barriers
	// re-establish a consistent state.
	per := m.snap.perPEBytes(m.rt.NumPEs())
	failedBytes := float64(per[failedPE])
	var worstLocal float64
	for _, b := range per {
		if t := float64(b) / m.model.SerializeBW; t > worstLocal {
			worstLocal = t
		}
	}
	buddyStream := failedBytes/m.model.MemBW + failedBytes/m.model.SerializeBW
	barriers := 4*m.model.Barrier + m.model.CoordPerPE*float64(m.rt.NumPEs())/8
	return des.Time(m.model.Base/2 + worstLocal + buddyStream + barriers), nil
}
