package ckpt

import (
	"math"
	"testing"
)

func TestOptimalPeriodFormula(t *testing.T) {
	// sqrt(2 * 30 * 21600) = sqrt(1296000) ≈ 1138.4
	got := OptimalPeriod(30, 6*3600)
	if math.Abs(got-1138.42) > 0.1 {
		t.Fatalf("Young period %v", got)
	}
	if !math.IsInf(OptimalPeriod(0, 100), 1) || !math.IsInf(OptimalPeriod(10, 0), 1) {
		t.Fatal("degenerate inputs should disable checkpointing")
	}
}

func TestModelIsUShapedWithMinNearYoung(t *testing.T) {
	const (
		work = 100 * 3600.0
		c    = 60.0
		r    = 300.0
		mtbf = 4 * 3600.0
	)
	young := OptimalPeriod(c, mtbf)
	best, bestT := math.Inf(1), 0.0
	var first, last float64
	for _, mult := range []float64{0.05, 0.1, 0.25, 0.5, 1, 2, 4, 10, 20} {
		T := young * mult
		e := ExpectedRunTime(work, T, c, r, mtbf)
		if mult == 0.05 {
			first = e
		}
		if mult == 20 {
			last = e
		}
		if e < best {
			best, bestT = e, T
		}
	}
	if bestT < young/2-1 || bestT > young*2+1 {
		t.Fatalf("model minimum at %v, Young says %v", bestT, young)
	}
	if first <= best || last <= best {
		t.Fatalf("model not U-shaped: ends %v/%v, min %v", first, last, best)
	}
}

func TestSimulationAgreesWithModel(t *testing.T) {
	const (
		work = 50 * 3600.0
		c    = 45.0
		r    = 180.0
		mtbf = 2 * 3600.0
	)
	young := OptimalPeriod(c, mtbf)
	mean := func(T float64) float64 {
		sum := 0.0
		const runs = 40
		for seed := int64(1); seed <= runs; seed++ {
			sum += SimulateFailures(work, T, c, r, mtbf, seed)
		}
		return sum / runs
	}
	atYoung := mean(young)
	tooOften := mean(young / 10)
	tooRare := mean(young * 10)
	if atYoung >= tooOften || atYoung >= tooRare {
		t.Fatalf("Young period not near-optimal: young %v, 0.1x %v, 10x %v",
			atYoung, tooOften, tooRare)
	}
	// The analytic model tracks the simulation within ~15%.
	model := ExpectedRunTime(work, young, c, r, mtbf)
	if rel := math.Abs(model-atYoung) / atYoung; rel > 0.15 {
		t.Fatalf("model %v vs simulation %v (%.0f%% off)", model, atYoung, rel*100)
	}
}

func TestSimulationNoFailures(t *testing.T) {
	// With an astronomically large MTBF, wall time = work + checkpoints.
	got := SimulateFailures(1000, 100, 5, 50, 1e15, 3)
	want := 1000 + 9*5.0 // 9 interior checkpoints (the last period ends the job)
	if math.Abs(got-want) > 5+1e-9 {
		t.Fatalf("failure-free wall %v, want about %v", got, want)
	}
}
