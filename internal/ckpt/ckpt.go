// Package ckpt implements the checkpoint/restart and fault-tolerance layer
// of §III-B: chare-based disk checkpoints that can be restarted on any PE
// count (split execution), and the double in-memory checkpointing scheme of
// FTC-Charm++ with simulated process failure and recovery.
//
// Because checkpoints are per-chare (unit-based), not per-process, a job
// checkpointed on 4096 PEs restarts transparently on 512 or 16384 — the
// elements are simply re-homed by the location manager.
package ckpt

import (
	"fmt"
	"io"
	"os"

	"charmgo/internal/charm"
	"charmgo/internal/des"
	"charmgo/internal/pup"
)

// ElemSnap is the serialized state of one chare-array element.
type ElemSnap struct {
	Idx  charm.Index
	PE   int // PE at capture time (for in-memory recovery placement)
	Data []byte
}

func (e *ElemSnap) Pup(p *pup.Pup) {
	p.Uint8(&e.Idx.Kind)
	p.Uint64(&e.Idx.A)
	p.Uint64(&e.Idx.B)
	p.Uint64(&e.Idx.C)
	p.Int(&e.PE)
	p.BytesSlice(&e.Data)
}

// ArraySnap captures one chare array.
type ArraySnap struct {
	Name  string
	Elems []ElemSnap
}

func (a *ArraySnap) Pup(p *pup.Pup) {
	p.String(&a.Name)
	pup.Slice(p, &a.Elems, func(p *pup.Pup, e *ElemSnap) { e.Pup(p) })
}

// Snapshot is a full application checkpoint.
type Snapshot struct {
	TakenAt float64 // virtual time of the checkpoint
	NumPEs  int     // PE count of the original run (informational only)
	Arrays  []ArraySnap
}

func (s *Snapshot) Pup(p *pup.Pup) {
	p.Float64(&s.TakenAt)
	p.Int(&s.NumPEs)
	pup.Slice(p, &s.Arrays, func(p *pup.Pup, a *ArraySnap) { a.Pup(p) })
}

// Capture serializes every element of every declared array through its Pup
// method (CkStartCheckpoint's data-gathering step).
func Capture(rt *charm.Runtime) *Snapshot {
	s := &Snapshot{TakenAt: float64(rt.Now()), NumPEs: rt.NumPEs()}
	for _, arr := range rt.Arrays() {
		as := ArraySnap{Name: arr.Name()}
		for _, idx := range arr.Keys() {
			as.Elems = append(as.Elems, ElemSnap{
				Idx:  idx,
				PE:   arr.PEOf(idx),
				Data: pup.Pack(arr.Get(idx)),
			})
		}
		s.Arrays = append(s.Arrays, as)
	}
	rt.Metrics().Counter("ckpt.captures").Inc()
	rt.Metrics().Counter("ckpt.bytes").Add(uint64(s.TotalBytes()))
	if h := rt.Trace(); h != nil {
		h.Checkpoint(rt.Now(), "capture", int(s.TotalBytes()))
	}
	return s
}

// Restore repopulates a freshly declared runtime from a snapshot: each
// element is recreated via its array's factory and inserted at its home on
// the new runtime's (possibly different) PE count.
func Restore(rt *charm.Runtime, s *Snapshot) error {
	for _, as := range s.Arrays {
		arr := rt.ArrayByName(as.Name)
		if arr == nil {
			return fmt.Errorf("ckpt: restore: array %q not declared", as.Name)
		}
		for _, es := range as.Elems {
			obj := arr.NewElement()
			if err := pup.Unpack(es.Data, obj); err != nil {
				return fmt.Errorf("ckpt: restore %s%v: %w", as.Name, es.Idx, err)
			}
			arr.Insert(es.Idx, obj)
		}
	}
	return nil
}

// TotalBytes returns the checkpoint's payload size.
func (s *Snapshot) TotalBytes() int64 {
	var n int64
	for _, a := range s.Arrays {
		for _, e := range a.Elems {
			n += int64(len(e.Data)) + 40
		}
	}
	return n
}

// PerPEBytes returns the checkpoint bytes resident on each of n PEs at
// capture time. Operators (cmd/ckptinfo) use it to judge the blast radius
// of a planned failure campaign: the buddy of a heavy PE streams that many
// bytes during restart.
func (s *Snapshot) PerPEBytes(n int) []int64 {
	per := make([]int64, n)
	for _, a := range s.Arrays {
		for _, e := range a.Elems {
			if e.PE >= 0 && e.PE < n {
				per[e.PE] += int64(len(e.Data)) + 40
			}
		}
	}
	return per
}

// WriteTo streams the snapshot in its PUP-framed binary format.
func (s *Snapshot) WriteTo(w io.Writer) (int64, error) {
	data := pup.Pack(s)
	n, err := w.Write(data)
	return int64(n), err
}

// ReadSnapshot parses a snapshot written by WriteTo.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	s := &Snapshot{}
	if err := pup.Unpack(data, s); err != nil {
		return nil, err
	}
	return s, nil
}

// Save writes the snapshot to a file (the "log" path of
// CkStartCheckpoint).
func (s *Snapshot) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := s.WriteTo(f); err != nil {
		return err
	}
	return f.Sync()
}

// Load reads a snapshot from a file (the "+restart log" path).
func Load(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadSnapshot(f)
}

// TimeModel parameterizes the virtual cost of checkpoint operations.
type TimeModel struct {
	// SerializeBW is the per-PE PUP serialization bandwidth, bytes/s.
	SerializeBW float64
	// DiskBW is the per-PE sustained file-system bandwidth, bytes/s
	// (parallel file system: every PE writes its own shard).
	DiskBW float64
	// MemBW is the per-PE memory/network bandwidth for buddy copies.
	MemBW float64
	// Barrier is the cost of one global synchronization.
	Barrier float64
	// CoordPerPE is the restart coordinator's per-PE bookkeeping cost,
	// the term that makes restart grow with P (Fig 10's barrier effect).
	CoordPerPE float64
	// Base is fixed per-operation overhead.
	Base float64
}

// DefaultModel returns parameters calibrated so BG/Q-scale runs land in the
// ranges the paper reports (tens of ms to seconds).
func DefaultModel(numPEs int) TimeModel {
	depth := 1.0
	for n := 1; n < numPEs; n <<= 1 {
		depth++
	}
	return TimeModel{
		SerializeBW: 2.0e9,
		DiskBW:      40e6,
		MemBW:       1.2e9,
		Barrier:     depth * 6e-6,
		CoordPerPE:  2.2e-6,
		Base:        3e-3,
	}
}

// DiskCheckpointTime models CkStartCheckpoint to a parallel file system:
// every PE serializes and writes its local elements concurrently, then a
// barrier confirms completion. More PEs ⇒ fewer bytes per PE ⇒ faster
// (Fig 8 right: 394 ms at 2k PEs down to 29 ms at 32k).
func DiskCheckpointTime(s *Snapshot, numPEs int, tm TimeModel) des.Time {
	per := s.PerPEBytes(numPEs)
	var worst float64
	for _, b := range per {
		t := float64(b)/tm.SerializeBW + float64(b)/tm.DiskBW
		if t > worst {
			worst = t
		}
	}
	return des.Time(tm.Base + worst + 2*tm.Barrier)
}

// DiskRestartTime models +restart: PEs read their shards back, elements are
// re-homed, and several barriers establish consistency.
func DiskRestartTime(s *Snapshot, numPEs int, tm TimeModel) des.Time {
	total := float64(s.TotalBytes())
	perPE := total / float64(numPEs)
	read := perPE/tm.DiskBW + perPE/tm.SerializeBW
	return des.Time(tm.Base + 2*read + 4*tm.Barrier + tm.CoordPerPE*float64(numPEs)/8)
}
