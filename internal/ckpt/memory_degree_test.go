package ckpt

import (
	"errors"
	"math"
	"testing"

	"charmgo/internal/charm"
)

func TestReplicasOfRing(t *testing.T) {
	cases := []struct {
		pe, n, r int
		want     []int
	}{
		{0, 8, 1, []int{1}},
		{7, 8, 1, []int{0}},
		{0, 8, 2, []int{1, 2}},
		{6, 8, 3, []int{7, 0, 1}},
		{0, 4, 9, []int{1, 2, 3}}, // clamped to n-1: never your own holder
		{0, 1, 2, nil},            // a 1-PE world has nowhere to replicate
		{3, 8, 0, nil},
	}
	for _, c := range cases {
		got := ReplicasOf(c.pe, c.n, c.r)
		if len(got) != len(c.want) {
			t.Fatalf("ReplicasOf(%d,%d,%d) = %v, want %v", c.pe, c.n, c.r, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("ReplicasOf(%d,%d,%d) = %v, want %v", c.pe, c.n, c.r, got, c.want)
			}
		}
		if len(got) > 0 && got[0] != BuddyOf(c.pe, c.n) {
			t.Fatalf("first replica of %d is not its buddy: %v vs %d", c.pe, got, BuddyOf(c.pe, c.n))
		}
	}
}

func TestReplicaMemoryBytesScalesWithDegree(t *testing.T) {
	rt, _ := buildRT(8, 64)
	snap := Capture(rt)
	base := snap.TotalBytes()
	prevWorst := int64(0)
	for r := 1; r <= 3; r++ {
		worst, total := ReplicaMemoryBytes(snap, 8, r)
		if total != int64(r+1)*base {
			t.Fatalf("R=%d: total %d, want (R+1)*payload = %d", r, total, int64(r+1)*base)
		}
		if worst <= prevWorst {
			t.Fatalf("R=%d: worst-PE bytes %d did not grow from %d", r, worst, prevWorst)
		}
		prevWorst = worst
	}
}

func TestMemCheckpointTimeDegreeOneMatchesBuddy(t *testing.T) {
	rt, _ := buildRT(8, 64)
	snap := Capture(rt)
	tm := DefaultModel(8)
	t1 := MemCheckpointTime(snap, 8, 1, tm)
	t2 := MemCheckpointTime(snap, 8, 2, tm)
	t3 := MemCheckpointTime(snap, 8, 3, tm)
	if !(t1 < t2 && t2 < t3) {
		t.Fatalf("checkpoint time not increasing in R: %v %v %v", t1, t2, t3)
	}
	// The degree charges R serialize-and-ship streams; the increments must
	// be equal (each extra copy costs the same shard transfer).
	if d1, d2 := t2-t1, t3-t2; math.Abs(float64(d1-d2)) > 1e-12 {
		t.Fatalf("unequal per-copy increments: %v vs %v", d1, d2)
	}
}

func TestPlanRecoveryFallsBackToFartherReplica(t *testing.T) {
	rt, _ := buildRT(8, 32)
	m := NewMem(rt)
	m.SetDegree(2)
	m.Checkpoint()

	// Healthy case: the nearest holder (the buddy) streams, no fallbacks.
	plan, err := m.PlanRecovery([]int{3})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Sources[0] != 4 || plan.Fallbacks != 0 {
		t.Fatalf("healthy plan: sources %v fallbacks %d", plan.Sources, plan.Fallbacks)
	}

	// Correlated failure: the PE and its buddy die together. The plan must
	// skip to the second ring successor and count the fallback.
	m.NoteFailure(3)
	m.NoteFailure(4)
	plan, err = m.PlanRecovery([]int{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Failed) != 2 || plan.Failed[0] != 3 || plan.Failed[1] != 4 {
		t.Fatalf("failed set %v", plan.Failed)
	}
	// PE 3's holders are {4,5}: 4 is in the failed set, so 5 streams.
	if plan.Sources[0] != 5 {
		t.Fatalf("PE 3 restored from %d, want 5", plan.Sources[0])
	}
	if plan.Fallbacks != 1 {
		t.Fatalf("fallbacks %d, want 1", plan.Fallbacks)
	}
}

func TestPlanRecoveryAllReplicasLost(t *testing.T) {
	rt, _ := buildRT(8, 32)
	m := NewMem(rt)
	m.SetDegree(2)
	m.Checkpoint()

	// PE 1's holders {2,3} both crash along with it: unrecoverable, and
	// the error is the typed sentinel the controller latches on.
	for _, pe := range []int{1, 2, 3} {
		m.NoteFailure(pe)
	}
	_, err := m.PlanRecovery([]int{1, 2, 3})
	if !errors.Is(err, ErrAllReplicasLost) {
		t.Fatalf("want ErrAllReplicasLost, got %v", err)
	}
	// The legacy alias must keep matching: R=1 callers check ErrBuddyFailed.
	if !errors.Is(err, ErrBuddyFailed) {
		t.Fatalf("ErrBuddyFailed alias broken: %v", err)
	}

	// At degree 3 the same crash set leaves holder 4 alive.
	m2 := NewMem(rt)
	m2.SetDegree(3)
	m2.Checkpoint()
	for _, pe := range []int{1, 2, 3} {
		m2.NoteFailure(pe)
	}
	plan, err := m2.PlanRecovery([]int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Sources[0] != 4 || plan.Fallbacks == 0 {
		t.Fatalf("degree-3 plan: sources %v fallbacks %d", plan.Sources, plan.Fallbacks)
	}
}

func TestPlanRecoverySkipsDoomedHolder(t *testing.T) {
	rt, _ := buildRT(8, 32)
	m := NewMem(rt)
	m.SetDegree(1)
	// A PE predicted to fail must not be handed anyone's only copy: with
	// PE 4 doomed at checkpoint time, PE 3's single holder becomes PE 5.
	m.Doom(4, true)
	m.Checkpoint()
	if got := m.Holders(3); len(got) != 1 || got[0] != 5 {
		t.Fatalf("holders of 3 with 4 doomed: %v, want [5]", got)
	}
	if m.Buddy(3) != 5 {
		t.Fatalf("buddy of 3 reads %d, want recorded holder 5", m.Buddy(3))
	}
	// Readmit and re-checkpoint: the ring heals.
	m.Doom(4, false)
	m.Checkpoint()
	if got := m.Holders(3); len(got) != 1 || got[0] != 4 {
		t.Fatalf("holders of 3 after readmit: %v, want [4]", got)
	}
}

func TestStartRecoveryWhileRecoveringRestartsRestore(t *testing.T) {
	rt, arr := buildRT(8, 32)
	m := NewMem(rt)
	m.SetDegree(2)
	m.Checkpoint()

	// First failure: open a restore window.
	m.NoteFailure(2)
	plan, err := m.PlanRecovery([]int{2})
	if err != nil {
		t.Fatal(err)
	}
	d1, err := m.StartRecovery(plan)
	if err != nil {
		t.Fatal(err)
	}
	if d1 <= 0 {
		t.Fatalf("restore duration %v", d1)
	}
	if rec, pes := m.Recovering(); !rec || len(pes) != 1 || pes[0] != 2 {
		t.Fatalf("recovering state: %v %v", rec, pes)
	}

	// A second failure lands mid-restore: plan against the survivors and
	// restart the window. The superseded attempt is counted.
	m.NoteFailure(3)
	plan2, err := m.PlanRecovery([]int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.StartRecovery(plan2); err != nil {
		t.Fatal(err)
	}
	if m.RestartedRestores != 1 {
		t.Fatalf("RestartedRestores %d, want 1", m.RestartedRestores)
	}
	if rec, pes := m.Recovering(); !rec || len(pes) != 2 {
		t.Fatalf("recovering state after restart: %v %v", rec, pes)
	}
	m.FinishRecovery()
	if rec, _ := m.Recovering(); rec {
		t.Fatal("window still open after FinishRecovery")
	}
	// Elements are back at checkpoint positions with checkpoint state.
	for i := 0; i < 32; i++ {
		if b := arr.Get(charm.Idx1(i)).(*blob); b.ID != int64(i) {
			t.Fatalf("element %d not restored: ID=%d", i, b.ID)
		}
	}
	if m.Restarts != 2 {
		t.Fatalf("Restarts %d, want 2 (both attempts count)", m.Restarts)
	}
}
