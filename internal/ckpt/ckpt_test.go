package ckpt

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"charmgo/internal/charm"
	"charmgo/internal/machine"
	"charmgo/internal/pup"
)

type blob struct {
	ID   int64
	Vals []float64
}

func (b *blob) Pup(p *pup.Pup) {
	p.Int64(&b.ID)
	p.Float64s(&b.Vals)
}

func buildRT(numPEs, numElems int) (*charm.Runtime, *charm.Array) {
	rt := charm.New(machine.New(machine.Testbed(numPEs)))
	arr := rt.DeclareArray("blobs", func() charm.Chare { return &blob{} },
		[]charm.Handler{func(obj charm.Chare, ctx *charm.Ctx, msg any) {}}, charm.ArrayOpts{})
	for i := 0; i < numElems; i++ {
		arr.Insert(charm.Idx1(i), &blob{ID: int64(i), Vals: []float64{float64(i), float64(i) * 2}})
	}
	return rt, arr
}

func TestCaptureRestoreSamePECount(t *testing.T) {
	rt, _ := buildRT(8, 40)
	snap := Capture(rt)
	if snap.NumPEs != 8 {
		t.Fatalf("snapshot PE count %d", snap.NumPEs)
	}
	rt2, arr2 := buildRT(8, 0)
	if err := Restore(rt2, snap); err != nil {
		t.Fatal(err)
	}
	if arr2.Len() != 40 {
		t.Fatalf("restored %d elements, want 40", arr2.Len())
	}
	for i := 0; i < 40; i++ {
		b := arr2.Get(charm.Idx1(i)).(*blob)
		if b.ID != int64(i) || len(b.Vals) != 2 || b.Vals[1] != float64(i)*2 {
			t.Fatalf("element %d corrupted: %+v", i, b)
		}
	}
}

func TestRestartOnDifferentPECount(t *testing.T) {
	// The headline §III-B property: restart on any number of PEs.
	rt, _ := buildRT(16, 64)
	snap := Capture(rt)
	for _, newPEs := range []int{4, 16, 32} {
		rt2, arr2 := buildRT(newPEs, 0)
		if err := Restore(rt2, snap); err != nil {
			t.Fatalf("restore on %d PEs: %v", newPEs, err)
		}
		if arr2.Len() != 64 {
			t.Fatalf("restore on %d PEs: %d elements", newPEs, arr2.Len())
		}
		used := map[int]bool{}
		for i := 0; i < 64; i++ {
			pe := arr2.PEOf(charm.Idx1(i))
			if pe < 0 || pe >= newPEs {
				t.Fatalf("element %d on PE %d of %d", i, pe, newPEs)
			}
			used[pe] = true
		}
		if len(used) < newPEs/2 {
			t.Fatalf("restore on %d PEs used only %d PEs", newPEs, len(used))
		}
	}
}

func TestSnapshotSerializationRoundTrip(t *testing.T) {
	rt, _ := buildRT(4, 10)
	snap := Capture(rt)
	var buf bytes.Buffer
	if _, err := snap.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumPEs != snap.NumPEs || len(got.Arrays) != len(snap.Arrays) {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Arrays[0].Elems) != 10 {
		t.Fatalf("element count %d", len(got.Arrays[0].Elems))
	}
	if !bytes.Equal(got.Arrays[0].Elems[3].Data, snap.Arrays[0].Elems[3].Data) {
		t.Fatal("element data corrupted in serialization")
	}
}

func TestSaveLoadFile(t *testing.T) {
	rt, _ := buildRT(4, 12)
	snap := Capture(rt)
	path := filepath.Join(t.TempDir(), "ckpt.bin")
	if err := snap.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	rt2, arr2 := buildRT(4, 0)
	if err := Restore(rt2, got); err != nil {
		t.Fatal(err)
	}
	if arr2.Len() != 12 {
		t.Fatalf("file round trip lost elements: %d", arr2.Len())
	}
}

func TestRestoreUnknownArrayFails(t *testing.T) {
	rt, _ := buildRT(4, 3)
	snap := Capture(rt)
	snap.Arrays[0].Name = "nonexistent"
	rt2, _ := buildRT(4, 0)
	if err := Restore(rt2, snap); err == nil {
		t.Fatal("restore into missing array should fail")
	}
}

func TestDiskCheckpointTimeShrinksWithPEs(t *testing.T) {
	// Fixed problem size spread over more PEs ⇒ less data per PE ⇒
	// faster checkpoint (Fig 8 right).
	times := map[int]float64{}
	for _, pes := range []int{64, 256, 1024} {
		rt, _ := buildRT(pes, 4096)
		snap := Capture(rt)
		tm := DefaultModel(pes)
		times[pes] = float64(DiskCheckpointTime(snap, pes, tm))
	}
	if !(times[64] > times[256] && times[256] > times[1024]) {
		t.Fatalf("checkpoint time not decreasing with PEs: %v", times)
	}
}

func TestMemCheckpointAndRecover(t *testing.T) {
	rt, arr := buildRT(8, 32)
	m := NewMem(rt)
	if m.HasCheckpoint() {
		t.Fatal("fresh checkpointer claims a checkpoint")
	}
	if _, err := m.FailAndRecover(0); err == nil {
		t.Fatal("recovery without checkpoint should fail")
	}
	d := m.Checkpoint()
	if d <= 0 {
		t.Fatalf("checkpoint duration %v", d)
	}
	// Corrupt state after the checkpoint (simulating lost progress).
	for i := 0; i < 32; i++ {
		arr.Get(charm.Idx1(i)).(*blob).ID = -999
	}
	arr.Insert(charm.Idx1(100), &blob{ID: 100}) // post-checkpoint insertion
	rd, err := m.FailAndRecover(3)
	if err != nil {
		t.Fatal(err)
	}
	if rd <= 0 {
		t.Fatalf("recovery duration %v", rd)
	}
	for i := 0; i < 32; i++ {
		b := arr.Get(charm.Idx1(i)).(*blob)
		if b.ID != int64(i) {
			t.Fatalf("element %d not rolled back: ID=%d", i, b.ID)
		}
	}
	if arr.Get(charm.Idx1(100)) != nil {
		t.Fatal("post-checkpoint element survived rollback")
	}
	if m.Checkpoints != 1 || m.Restarts != 1 {
		t.Fatalf("counters: %d checkpoints, %d restarts", m.Checkpoints, m.Restarts)
	}
}

func TestMemRecoverPlacesElementsAtSnapshotPEs(t *testing.T) {
	rt, arr := buildRT(8, 24)
	want := map[int]int{}
	for i := 0; i < 24; i++ {
		want[i] = arr.PEOf(charm.Idx1(i))
	}
	m := NewMem(rt)
	m.Checkpoint()
	// Scatter elements to other PEs post-checkpoint.
	for i := 0; i < 24; i++ {
		arr.Replace(charm.Idx1(i), arr.Get(charm.Idx1(i)), (want[i]+3)%8)
	}
	if _, err := m.FailAndRecover(1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 24; i++ {
		if got := arr.PEOf(charm.Idx1(i)); got != want[i] {
			t.Fatalf("element %d on PE %d after recovery, want %d", i, got, want[i])
		}
	}
}

func TestRestartTimeGrowsWithPEsCheckpointShrinks(t *testing.T) {
	// Fig 10's two opposing curves: checkpoint time falls with P while
	// restart time rises (barrier/coordination effect).
	ck := map[int]float64{}
	rs := map[int]float64{}
	for _, pes := range []int{512, 2048, 8192} {
		rt := charm.New(machine.New(machine.Testbed(pes)))
		arr := rt.DeclareArray("blobs", func() charm.Chare { return &blob{} },
			[]charm.Handler{}, charm.ArrayOpts{})
		for i := 0; i < 16384; i++ {
			arr.Insert(charm.Idx1(i), &blob{ID: int64(i), Vals: make([]float64, 512)})
		}
		m := NewMem(rt)
		tm := DefaultModel(pes)
		tm.Base = 1e-4 // focus the test on the data and barrier terms
		m.SetModel(tm)
		ck[pes] = float64(m.Checkpoint())
		d, err := m.FailAndRecover(0)
		if err != nil {
			t.Fatal(err)
		}
		rs[pes] = float64(d)
	}
	if !(ck[512] > ck[2048] && ck[2048] > ck[8192]) {
		t.Fatalf("mem checkpoint not shrinking with P: %v", ck)
	}
	if !(rs[512] < rs[8192]) {
		t.Fatalf("restart time not growing with P: %v", rs)
	}
}

func TestBuddyMapping(t *testing.T) {
	rt, _ := buildRT(4, 4)
	m := NewMem(rt)
	if m.Buddy(0) != 1 || m.Buddy(3) != 0 {
		t.Fatalf("buddy ring broken: %d %d", m.Buddy(0), m.Buddy(3))
	}
}

func TestLoadRejectsCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.ckpt")
	if err := os.WriteFile(path, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("corrupt checkpoint should fail to load")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.ckpt")); err == nil {
		t.Fatal("missing file should fail")
	}
}
