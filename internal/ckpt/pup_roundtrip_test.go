package ckpt

import (
	"testing"

	"charmgo/internal/charm"
	"charmgo/internal/pup/puptest"
)

// TestPupRoundTrip covers the checkpoint container types themselves: a
// snapshot that loses state while being written is as fatal as a chare
// that loses state while being captured.
func TestPupRoundTrip(t *testing.T) {
	puptest.CheckEqual(t,
		&ElemSnap{Idx: charm.Idx2(3, 4), PE: 2, Data: []byte{1, 2, 3}},
		&ArraySnap{Name: "cells", Elems: []ElemSnap{
			{Idx: charm.Idx1(0), PE: 0, Data: []byte{9}},
			{Idx: charm.Idx1(1), PE: 1, Data: nil},
		}},
		&Snapshot{TakenAt: 12.5, NumPEs: 8, Arrays: []ArraySnap{
			{Name: "a", Elems: []ElemSnap{{Idx: charm.Idx1(7), PE: 3, Data: []byte("state")}}},
		}},
	)
}
