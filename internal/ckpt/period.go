package ckpt

import "math"

// OptimalPeriod returns Young's approximation of the checkpoint interval
// that minimizes expected run time: sqrt(2 · C · MTBF), where C is the
// checkpoint cost and MTBF the mean time between failures. "Fault
// tolerance frequency" is one of the §III-E control points; this gives the
// control system its starting value.
func OptimalPeriod(checkpointCost, mtbf float64) float64 {
	if checkpointCost <= 0 || mtbf <= 0 {
		return math.Inf(1)
	}
	return math.Sqrt(2 * checkpointCost * mtbf)
}

// ExpectedRunTime models the wall time of a job with useful work W,
// checkpoint cost C every T seconds, restart cost R, and exponential
// failures at rate 1/MTBF — the first-order model behind Young's formula:
// the job pays one checkpoint per period, and each failure costs the
// restart plus on average half a period of recomputation.
func ExpectedRunTime(work, period, checkpointCost, restartCost, mtbf float64) float64 {
	if period <= 0 || mtbf <= 0 {
		return math.Inf(1)
	}
	// Wall time spent on work + checkpoints.
	base := work * (1 + checkpointCost/period)
	// Expected failures over that span, each losing restart + half a
	// period (plus the in-progress checkpoint fraction, folded in).
	failures := base / mtbf
	lost := failures * (restartCost + period/2 + checkpointCost/2)
	return base + lost
}

// SimulateFailures replays a job with deterministic pseudo-random failure
// times and returns the actual wall time — the empirical counterpart used
// to validate the model (and, through it, Young's period).
func SimulateFailures(work, period, checkpointCost, restartCost, mtbf float64, seed int64) float64 {
	// xorshift for deterministic exponential samples.
	s := uint64(seed)*2685821657736338717 + 1
	next := func() float64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		u := float64(s%(1<<52)) / float64(uint64(1)<<52)
		if u <= 0 {
			u = 1e-12
		}
		return -mtbf * math.Log(u)
	}
	wall := 0.0
	doneWork := 0.0  // work safely checkpointed
	sinceCkpt := 0.0 // work since the last checkpoint
	failAt := next() // wall time of the next failure
	for doneWork+sinceCkpt < work {
		// Advance to the next interesting instant: checkpoint or failure.
		toCkpt := period - sinceCkpt
		remaining := work - doneWork - sinceCkpt
		if remaining < toCkpt {
			toCkpt = remaining
		}
		if wall+toCkpt >= failAt {
			// Failure strikes: lose the uncheckpointed work.
			progressed := failAt - wall
			if progressed > 0 {
				sinceCkpt += progressed
			}
			wall = failAt + restartCost
			sinceCkpt = 0
			failAt = wall + next()
			continue
		}
		wall += toCkpt
		sinceCkpt += toCkpt
		if doneWork+sinceCkpt >= work {
			break
		}
		// Take a checkpoint (a failure during it loses the period too;
		// approximate by exposing the checkpoint to the failure clock).
		if wall+checkpointCost >= failAt {
			wall = failAt + restartCost
			sinceCkpt = 0
			failAt = wall + next()
			continue
		}
		wall += checkpointCost
		doneWork += sinceCkpt
		sinceCkpt = 0
	}
	return wall
}
