package ccs

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"charmgo/internal/charm"
	"charmgo/internal/lb"
	"charmgo/internal/machine"
	"charmgo/internal/malleable"
	"charmgo/internal/pup"
)

type blob struct{ N int64 }

func (b *blob) Pup(p *pup.Pup) { p.Int64(&b.N) }

func newServer(t *testing.T, pes int) (*Server, *charm.Runtime, string) {
	t.Helper()
	rt := charm.New(machine.New(machine.Testbed(pes)))
	srv := NewServer(rt)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv, rt, addr
}

// pumpInBackground drives Pump until the test ends, emulating the
// simulation main loop.
func pumpInBackground(t *testing.T, srv *Server) {
	t.Helper()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				srv.Pump()
				time.Sleep(time.Millisecond)
			}
		}
	}()
	t.Cleanup(func() { close(stop); wg.Wait() })
}

func TestCallRoundTrip(t *testing.T) {
	srv, _, addr := newServer(t, 4)
	srv.Register("echo", func(args string) (string, error) {
		return "hello " + args, nil
	})
	pumpInBackground(t, srv)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, err := c.Call("echo", "world")
	if err != nil {
		t.Fatal(err)
	}
	if got != "hello world" {
		t.Fatalf("got %q", got)
	}
}

func TestUnknownHandlerAndHandlerError(t *testing.T) {
	srv, _, addr := newServer(t, 2)
	srv.Register("fail", func(args string) (string, error) {
		return "", fmt.Errorf("deliberate: %s", args)
	})
	pumpInBackground(t, srv)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call("nope", ""); err == nil || !strings.Contains(err.Error(), "no handler") {
		t.Fatalf("want no-handler error, got %v", err)
	}
	if _, err := c.Call("fail", "x"); err == nil || !strings.Contains(err.Error(), "deliberate: x") {
		t.Fatalf("want handler error, got %v", err)
	}
}

func TestMultipleRequestsOneConnection(t *testing.T) {
	srv, _, addr := newServer(t, 2)
	count := 0
	srv.Register("inc", func(string) (string, error) {
		count++
		return strconv.Itoa(count), nil
	})
	pumpInBackground(t, srv)
	c, _ := Dial(addr)
	defer c.Close()
	for i := 1; i <= 5; i++ {
		got, err := c.Call("inc", "")
		if err != nil {
			t.Fatal(err)
		}
		if got != strconv.Itoa(i) {
			t.Fatalf("call %d returned %s", i, got)
		}
	}
}

func TestShrinkViaCCS(t *testing.T) {
	// The paper's exact scenario: an external shrink request arrives over
	// CCS and the RTS reconfigures the running job.
	srv, rt, addr := newServer(t, 8)
	rt.SetBalancer(lb.Greedy{})
	arr := rt.DeclareArray("blobs", func() charm.Chare { return &blob{} },
		[]charm.Handler{func(obj charm.Chare, ctx *charm.Ctx, msg any) { ctx.Charge(1e-5) }},
		charm.ArrayOpts{Migratable: true})
	for i := 0; i < 32; i++ {
		arr.Insert(charm.Idx1(i), &blob{N: int64(i)})
	}
	mgr := malleable.NewManager(rt)
	srv.Register("shrink", func(args string) (string, error) {
		n, err := strconv.Atoi(args)
		if err != nil {
			return "", err
		}
		if err := mgr.Reconfigure(n); err != nil {
			return "", err
		}
		return fmt.Sprintf("now on %d PEs", rt.NumPEs()), nil
	})
	srv.Register("pes", func(string) (string, error) {
		return strconv.Itoa(rt.NumPEs()), nil
	})
	pumpInBackground(t, srv)

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got, _ := c.Call("pes", ""); got != "8" {
		t.Fatalf("initial PEs %s", got)
	}
	res, err := c.Call("shrink", "4")
	if err != nil {
		t.Fatal(err)
	}
	if res != "now on 4 PEs" {
		t.Fatalf("shrink reply %q", res)
	}
	if rt.NumPEs() != 4 {
		t.Fatalf("runtime still on %d PEs", rt.NumPEs())
	}
	for i := 0; i < 32; i++ {
		if pe := arr.PEOf(charm.Idx1(i)); pe >= 4 {
			t.Fatalf("element %d left on evacuated PE %d", i, pe)
		}
	}
	if _, err := c.Call("shrink", "0"); err == nil {
		t.Fatal("invalid shrink should propagate the error to the client")
	}
}

func TestDriveIntegratesPumping(t *testing.T) {
	rt := charm.New(machine.New(machine.Testbed(4)))
	srv := NewServer(rt)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	handled := make(chan struct{})
	srv.Register("ping", func(string) (string, error) {
		close(handled)
		return "pong", nil
	})
	go func() {
		c, err := Dial(addr)
		if err != nil {
			return
		}
		defer c.Close()
		c.Call("ping", "")
	}()
	var done atomic.Bool
	go func() {
		<-handled
		done.Store(true)
	}()
	srv.Drive(0.01, done.Load)
	select {
	case <-handled:
	case <-time.After(5 * time.Second):
		t.Fatal("Drive never pumped the request")
	}
}

// pumpAdvancing drives Pump while moving the virtual clock forward in
// fixed slices, so deferred (backed-off) requests come due; reviveAfter
// iterations in, every dead PE is brought back via RecoverReset.
func pumpAdvancing(t *testing.T, srv *Server, rt *charm.Runtime, reviveAfter int) {
	t.Helper()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		eng := rt.Engine()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i == reviveAfter {
				rt.RecoverReset()
			}
			srv.Pump()
			eng.RunUntil(eng.Now() + 2e-4)
			time.Sleep(time.Millisecond)
		}
	}()
	t.Cleanup(func() { close(stop); wg.Wait() })
}

func TestDeadPERetriesUntilRecovery(t *testing.T) {
	srv, rt, addr := newServer(t, 4)
	srv.SetRetryPolicy(RetryPolicy{Base: 1e-4, Cap: 1e-3, MaxRetries: 1000})
	srv.RegisterOn("work", 2, func(string) (string, error) {
		return "done", nil
	})
	rt.CrashPE(2)
	pumpAdvancing(t, srv, rt, 10)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, err := c.Call("work", "")
	if err != nil {
		t.Fatalf("call across a recovered crash should succeed: %v", err)
	}
	if got != "done" {
		t.Fatalf("got %q", got)
	}
	if v := rt.Metrics().Counter("ccs.retries").Value(); v == 0 {
		t.Fatal("ccs.retries never incremented despite a dead serving PE")
	}
	if v := rt.Metrics().Counter("ccs.timeouts").Value(); v != 0 {
		t.Fatalf("ccs.timeouts = %d on a recovered call", v)
	}
}

func TestDeadPERetriesExhaust(t *testing.T) {
	srv, rt, addr := newServer(t, 4)
	srv.SetRetryPolicy(RetryPolicy{Base: 1e-4, Cap: 4e-4, MaxRetries: 3})
	srv.RegisterOn("work", 1, func(string) (string, error) {
		return "done", nil
	})
	rt.CrashPE(1)
	pumpAdvancing(t, srv, rt, -1) // never revived
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call("work", ""); err == nil ||
		!strings.Contains(err.Error(), "still dead after 3 retries") {
		t.Fatalf("want exhaustion error, got %v", err)
	}
	if v := rt.Metrics().Counter("ccs.timeouts").Value(); v != 1 {
		t.Fatalf("ccs.timeouts = %d, want 1", v)
	}
	if v := rt.Metrics().Counter("ccs.retries").Value(); v != 3 {
		t.Fatalf("ccs.retries = %d, want 3", v)
	}
	// CallRetry re-issues the whole request: one more exhaustion cycle.
	if _, err := c.CallRetry("work", "", 2); err == nil {
		t.Fatal("CallRetry against a permanently dead PE should fail")
	}
	if v := rt.Metrics().Counter("ccs.timeouts").Value(); v != 3 {
		t.Fatalf("ccs.timeouts = %d after CallRetry(2 attempts), want 3", v)
	}
}

func TestHandlerWithoutAffinityIgnoresCrashes(t *testing.T) {
	srv, rt, addr := newServer(t, 2)
	srv.Register("ping", func(string) (string, error) { return "pong", nil })
	rt.CrashPE(1)
	pumpInBackground(t, srv)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got, err := c.Call("ping", ""); err != nil || got != "pong" {
		t.Fatalf("affinity-free handler should serve during a crash: %q, %v", got, err)
	}
	if v := rt.Metrics().Counter("ccs.retries").Value(); v != 0 {
		t.Fatalf("ccs.retries = %d for an affinity-free handler", v)
	}
}

func TestCloseRejectsLateClients(t *testing.T) {
	srv, _, addr := newServer(t, 2)
	srv.Close()
	if c, err := Dial(addr); err == nil {
		defer c.Close()
		if _, err := c.Call("x", ""); err == nil {
			t.Fatal("call after Close should fail")
		}
	}
}
