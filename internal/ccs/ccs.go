// Package ccs implements a Converse Client-Server (CCS) interface (§III-D,
// [17]): a TCP endpoint through which external clients steer a running
// job — the mechanism the paper uses to deliver shrink/expand requests to
// LeanMD mid-run ("On a shrink request (sent through CHARM++ CCS
// mechanism), the RTS reconfigures itself...").
//
// Handlers registered by name execute on the simulation goroutine, so they
// may touch the runtime freely; network goroutines only enqueue requests.
// The driver interleaves simulation slices with request pumping:
//
//	srv := ccs.NewServer(rt)
//	srv.Register("shrink", ...)
//	srv.Listen("127.0.0.1:0")
//	srv.Drive(0.01, func() bool { return rt.Exited() })
//
// The wire protocol is one JSON object per line:
//
//	→ {"handler":"shrink","args":"128"}
//	← {"ok":true,"result":"now on 128 PEs"}
package ccs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"charmgo/internal/charm"
	"charmgo/internal/des"
)

// Handler executes one external command on the simulation goroutine.
type Handler func(args string) (string, error)

// Request is the wire format of a command.
type Request struct {
	Handler string `json:"handler"`
	Args    string `json:"args"`
}

// Response is the wire format of a reply.
type Response struct {
	OK     bool   `json:"ok"`
	Result string `json:"result,omitempty"`
	Error  string `json:"error,omitempty"`
}

type pending struct {
	req  Request
	resp chan Response
}

// Server is one CCS endpoint bound to a runtime.
type Server struct {
	rt *charm.Runtime
	ln net.Listener

	mu       sync.Mutex
	handlers map[string]Handler
	queue    chan pending
	closed   bool
	conns    map[net.Conn]bool
}

// NewServer creates a server for the runtime (not yet listening).
func NewServer(rt *charm.Runtime) *Server {
	return &Server{
		rt:       rt,
		handlers: map[string]Handler{},
		queue:    make(chan pending, 64),
		conns:    map[net.Conn]bool{},
	}
}

// Register installs a named handler. Registration is not safe after
// Listen; install every handler first.
func (s *Server) Register(name string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[name] = h
}

// Listen starts accepting clients on addr (use "127.0.0.1:0" for an
// ephemeral port) and returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	go s.acceptLoop()
	return ln.Addr().String(), nil
}

// Addr returns the bound address.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops accepting, disconnects clients, and rejects queued requests.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if s.ln != nil {
		s.ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	// Reject anything still queued.
	for {
		select {
		case p := <-s.queue:
			p.resp <- Response{OK: false, Error: "ccs: server closed"}
		default:
			return
		}
	}
}

func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return
		}
		p := pending{req: req, resp: make(chan Response, 1)}
		select {
		case s.queue <- p:
		default:
			enc.Encode(Response{OK: false, Error: "ccs: request queue full"})
			continue
		}
		if err := enc.Encode(<-p.resp); err != nil {
			return
		}
	}
}

// Pump executes every queued request on the caller's goroutine (which must
// be the simulation goroutine) and returns the number handled.
func (s *Server) Pump() int {
	n := 0
	for {
		select {
		case p, ok := <-s.queue:
			if !ok {
				return n
			}
			p.resp <- s.dispatch(p.req)
			n++
		default:
			return n
		}
	}
}

func (s *Server) dispatch(req Request) Response {
	s.mu.Lock()
	h, ok := s.handlers[req.Handler]
	s.mu.Unlock()
	if !ok {
		return Response{OK: false, Error: fmt.Sprintf("ccs: no handler %q", req.Handler)}
	}
	result, err := h(req.Args)
	if err != nil {
		return Response{OK: false, Error: err.Error()}
	}
	return Response{OK: true, Result: result}
}

// Drive runs the simulation in slices of the given virtual duration,
// pumping external requests between slices, until done() reports true.
// When the engine has drained and no requests are queued, Drive yields the
// processor briefly (wall clock) so external clients can connect — this is
// how a CCS-steered job's main loop waits for commands.
func (s *Server) Drive(slice des.Time, done func() bool) {
	eng := s.rt.Engine()
	for !done() {
		eng.RunUntil(eng.Now() + slice)
		if s.Pump() == 0 && eng.Pending() == 0 {
			time.Sleep(time.Millisecond) //charmvet:wallclock (real-I/O yield while awaiting external clients)
		}
	}
}

// Client is a minimal CCS client.
type Client struct {
	conn net.Conn
	dec  *json.Decoder
	enc  *json.Encoder
}

// Dial connects to a CCS server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, dec: json.NewDecoder(bufio.NewReader(conn)), enc: json.NewEncoder(conn)}, nil
}

// Call sends one request and waits for the reply.
func (c *Client) Call(handler, args string) (string, error) {
	if err := c.enc.Encode(Request{Handler: handler, Args: args}); err != nil {
		return "", err
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return "", err
	}
	if !resp.OK {
		return "", fmt.Errorf("%s", resp.Error)
	}
	return resp.Result, nil
}

// Close closes the client connection.
func (c *Client) Close() error { return c.conn.Close() }
