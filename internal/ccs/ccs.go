// Package ccs implements a Converse Client-Server (CCS) interface (§III-D,
// [17]): a TCP endpoint through which external clients steer a running
// job — the mechanism the paper uses to deliver shrink/expand requests to
// LeanMD mid-run ("On a shrink request (sent through CHARM++ CCS
// mechanism), the RTS reconfigures itself...").
//
// Handlers registered by name execute on the simulation goroutine, so they
// may touch the runtime freely; network goroutines only enqueue requests.
// The driver interleaves simulation slices with request pumping:
//
//	srv := ccs.NewServer(rt)
//	srv.Register("shrink", ...)
//	srv.Listen("127.0.0.1:0")
//	srv.Drive(0.01, func() bool { return rt.Exited() })
//
// The wire protocol is one JSON object per line:
//
//	→ {"handler":"shrink","args":"128"}
//	← {"ok":true,"result":"now on 128 PEs"}
package ccs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"charmgo/internal/charm"
	"charmgo/internal/des"
	"charmgo/internal/projections/metrics"
)

// Handler executes one external command on the simulation goroutine.
type Handler func(args string) (string, error)

// Request is the wire format of a command.
type Request struct {
	Handler string `json:"handler"`
	Args    string `json:"args"`
}

// Response is the wire format of a reply. Retryable marks transient
// failures (queue full, serving PE dead) the client may simply re-issue.
type Response struct {
	OK        bool   `json:"ok"`
	Result    string `json:"result,omitempty"`
	Error     string `json:"error,omitempty"`
	Retryable bool   `json:"retryable,omitempty"`
}

type pending struct {
	req  Request
	resp chan Response
}

// deferred is a request waiting out a backoff interval in virtual time
// because its serving PE is dead.
type deferred struct {
	p       pending
	attempt int
	due     des.Time
}

// RetryPolicy bounds the server-side retry of requests whose serving PE is
// dead: the k-th requeue waits min(Base·2^k, Cap) of *virtual* time, and
// after MaxRetries requeues the request fails with a retryable error. All
// pacing is on the simulation clock, so a campaign's retry schedule is as
// deterministic as the rest of the run.
type RetryPolicy struct {
	Base       des.Time
	Cap        des.Time
	MaxRetries int
}

// DefaultRetryPolicy matches the chaos campaigns' detection scale: the
// first requeue waits 100 µs, doubling to a 2 ms cap, giving a dead PE
// ~15 ms of virtual time to be detected and recovered before the client
// sees a failure.
var DefaultRetryPolicy = RetryPolicy{Base: 1e-4, Cap: 2e-3, MaxRetries: 10}

type handlerEntry struct {
	h  Handler
	pe int // serving PE, or -1 when the handler has no PE affinity
}

// Server is one CCS endpoint bound to a runtime.
type Server struct {
	rt *charm.Runtime
	ln net.Listener

	mu       sync.Mutex
	handlers map[string]handlerEntry
	queue    chan pending
	closed   bool
	conns    map[net.Conn]bool

	// Simulation-goroutine-only state (touched by Pump/Drive, never by
	// network goroutines).
	retry    RetryPolicy
	backlog  []deferred
	retries  *metrics.Counter // ccs.retries: requeues due to a dead serving PE
	timeouts *metrics.Counter // ccs.timeouts: requests failed after exhausting retries
}

// NewServer creates a server for the runtime (not yet listening).
func NewServer(rt *charm.Runtime) *Server {
	return &Server{
		rt:       rt,
		handlers: map[string]handlerEntry{},
		queue:    make(chan pending, 64),
		conns:    map[net.Conn]bool{},
		retry:    DefaultRetryPolicy,
		retries:  rt.Metrics().Counter("ccs.retries"),
		timeouts: rt.Metrics().Counter("ccs.timeouts"),
	}
}

// SetRetryPolicy replaces the dead-PE retry policy. Call before Listen.
func (s *Server) SetRetryPolicy(p RetryPolicy) { s.retry = p }

// Register installs a named handler with no PE affinity: it runs whenever
// the simulation goroutine pumps, even mid-recovery. Registration is not
// safe after Listen; install every handler first.
func (s *Server) Register(name string, h Handler) { s.RegisterOn(name, -1, h) }

// RegisterOn installs a handler served by a specific PE. While that PE is
// crashed (internal/chaos), requests are not failed immediately: they are
// requeued with capped exponential backoff in virtual time (RetryPolicy),
// riding out the failure detector's window plus the rollback. The requeue
// is deliberately not epoch-guarded — a CCS request originates outside the
// simulation, so a rollback must not discard it the way it discards
// pre-crash in-flight messages.
func (s *Server) RegisterOn(name string, pe int, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[name] = handlerEntry{h: h, pe: pe}
}

// Listen starts accepting clients on addr (use "127.0.0.1:0" for an
// ephemeral port) and returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	go s.acceptLoop()
	return ln.Addr().String(), nil
}

// Addr returns the bound address.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops accepting, disconnects clients, and rejects queued requests.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if s.ln != nil {
		s.ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	// Reject anything still queued or deferred.
	for _, d := range s.backlog {
		d.p.resp <- Response{OK: false, Error: "ccs: server closed"}
	}
	s.backlog = nil
	for {
		select {
		case p := <-s.queue:
			p.resp <- Response{OK: false, Error: "ccs: server closed"}
		default:
			return
		}
	}
}

func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return
		}
		p := pending{req: req, resp: make(chan Response, 1)}
		select {
		case s.queue <- p:
		default:
			enc.Encode(Response{OK: false, Retryable: true, Error: "ccs: request queue full"})
			continue
		}
		if err := enc.Encode(<-p.resp); err != nil {
			return
		}
	}
}

// Pump executes every queued request on the caller's goroutine (which must
// be the simulation goroutine) and returns the number handled. Deferred
// requests whose backoff has elapsed in virtual time are retried first, in
// the order they were deferred.
func (s *Server) Pump() int {
	n := 0
	now := s.rt.Engine().Now()
	prev := s.backlog
	s.backlog = nil // serve re-appends anything deferred again
	for _, d := range prev {
		if d.due > now {
			s.backlog = append(s.backlog, d)
			continue
		}
		if s.serve(d.p, d.attempt) {
			n++
		}
	}
	for {
		select {
		case p, ok := <-s.queue:
			if !ok {
				return n
			}
			if s.serve(p, 0) {
				n++
			}
		default:
			return n
		}
	}
}

// serve dispatches one request; it reports whether a reply was produced
// (false when the request was deferred for a dead serving PE).
func (s *Server) serve(p pending, attempt int) bool {
	s.mu.Lock()
	h, ok := s.handlers[p.req.Handler]
	s.mu.Unlock()
	if !ok {
		p.resp <- Response{OK: false, Error: fmt.Sprintf("ccs: no handler %q", p.req.Handler)}
		return true
	}
	if h.pe >= 0 && s.rt.PEDead(h.pe) {
		if attempt >= s.retry.MaxRetries {
			s.timeouts.Inc()
			p.resp <- Response{OK: false, Retryable: true, Error: fmt.Sprintf(
				"ccs: handler %q: serving PE %d still dead after %d retries",
				p.req.Handler, h.pe, attempt)}
			return true
		}
		s.retries.Inc()
		backoff := s.retry.Base
		for i := 0; i < attempt && backoff < s.retry.Cap; i++ {
			backoff *= 2
		}
		if backoff > s.retry.Cap {
			backoff = s.retry.Cap
		}
		s.backlog = append(s.backlog, deferred{
			p: p, attempt: attempt + 1, due: s.rt.Engine().Now() + backoff,
		})
		return false
	}
	result, err := h.h(p.req.Args)
	if err != nil {
		p.resp <- Response{OK: false, Error: err.Error()}
		return true
	}
	p.resp <- Response{OK: true, Result: result}
	return true
}

// Drive runs the simulation in slices of the given virtual duration,
// pumping external requests between slices, until done() reports true.
// When the engine has drained and no requests are queued, Drive yields the
// processor briefly (wall clock) so external clients can connect — this is
// how a CCS-steered job's main loop waits for commands.
func (s *Server) Drive(slice des.Time, done func() bool) {
	eng := s.rt.Engine()
	for !done() {
		eng.RunUntil(eng.Now() + slice)
		if s.Pump() == 0 && eng.Pending() == 0 {
			time.Sleep(time.Millisecond) //charmvet:wallclock (real-I/O yield while awaiting external clients)
		}
	}
}

// Client is a minimal CCS client.
type Client struct {
	conn net.Conn
	dec  *json.Decoder
	enc  *json.Encoder
}

// Dial connects to a CCS server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, dec: json.NewDecoder(bufio.NewReader(conn)), enc: json.NewEncoder(conn)}, nil
}

// Call sends one request and waits for the reply.
func (c *Client) Call(handler, args string) (string, error) {
	resp, err := c.call(handler, args)
	if err != nil {
		return "", err
	}
	if !resp.OK {
		return "", fmt.Errorf("%s", resp.Error)
	}
	return resp.Result, nil
}

// CallRetry is Call with client-side resilience: responses the server marks
// Retryable (request queue full, serving PE dead beyond the server's own
// virtual-time backoff budget) are re-issued up to attempts times, waiting
// min(100ms·2^k, 1s) of wall clock between attempts. Wall-clock pacing is
// correct here — the client lives outside the simulation, like the Drive
// yield — and the server's own dead-PE backoff remains virtual-time, so
// the simulated schedule stays deterministic.
func (c *Client) CallRetry(handler, args string, attempts int) (string, error) {
	backoff := 100 * time.Millisecond
	const capB = time.Second
	var resp Response
	for i := 0; i < attempts; i++ {
		var err error
		resp, err = c.call(handler, args)
		if err != nil {
			return "", err // transport errors are not retried: the stream state is unknown
		}
		if resp.OK {
			return resp.Result, nil
		}
		if !resp.Retryable || i == attempts-1 {
			break
		}
		time.Sleep(backoff) //charmvet:wallclock (external client pacing, outside the simulation)
		if backoff *= 2; backoff > capB {
			backoff = capB
		}
	}
	return "", fmt.Errorf("%s", resp.Error)
}

func (c *Client) call(handler, args string) (Response, error) {
	if err := c.enc.Encode(Request{Handler: handler, Args: args}); err != nil {
		return Response{}, err
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return Response{}, err
	}
	return resp, nil
}

// Close closes the client connection.
func (c *Client) Close() error { return c.conn.Close() }
