// Package pup implements the pack/unpack (PUP) serialization framework of
// the migratable-objects model. A single traversal function written by the
// chare author serves three purposes — sizing, packing, and unpacking —
// exactly like Charm++'s PUP::er: the runtime calls it with a Pup in the
// appropriate mode to migrate a chare, take a checkpoint, or restore one.
//
//	func (a *A) Pup(p *pup.Pup) {
//		p.Int(&a.foo)
//		p.Float64s(&a.bar)
//	}
package pup

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"
)

// Mode selects what a traversal does.
type Mode int

const (
	// Sizing measures the number of bytes the object serializes to.
	Sizing Mode = iota
	// Packing writes the object into the buffer.
	Packing
	// Unpacking reads the object out of the buffer.
	Unpacking
)

func (m Mode) String() string {
	switch m {
	case Sizing:
		return "sizing"
	case Packing:
		return "packing"
	case Unpacking:
		return "unpacking"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Pupable is the interface migratable state implements.
type Pupable interface {
	Pup(p *Pup)
}

// Pup is the serialization cursor passed to Pup methods.
type Pup struct {
	mode Mode
	buf  []byte
	off  int
}

// NewSizer returns a Pup that measures.
func NewSizer() *Pup { return &Pup{mode: Sizing} }

// NewPacker returns a Pup that writes into buf, which must be large enough
// (use Size first, or the Pack convenience function).
func NewPacker(buf []byte) *Pup { return &Pup{mode: Packing, buf: buf} }

// NewUnpacker returns a Pup that reads from buf.
func NewUnpacker(buf []byte) *Pup { return &Pup{mode: Unpacking, buf: buf} }

// Mode returns the traversal mode.
func (p *Pup) Mode() Mode { return p.mode }

// IsUnpacking reports whether the traversal restores state; Pup methods use
// it to allocate structures before filling them.
func (p *Pup) IsUnpacking() bool { return p.mode == Unpacking }

// IsSizing reports whether the traversal only measures.
func (p *Pup) IsSizing() bool { return p.mode == Sizing }

// Bytes returns the cursor position: the measured size after a sizing
// traversal, or the bytes consumed/produced so far.
func (p *Pup) Bytes() int { return p.off }

func (p *Pup) need(n int) []byte {
	switch p.mode {
	case Sizing:
		p.off += n
		return nil
	case Packing:
		if p.off+n > len(p.buf) {
			panic(fmt.Sprintf("pup: packing overflow at %d+%d of %d", p.off, n, len(p.buf)))
		}
	case Unpacking:
		if p.off+n > len(p.buf) {
			panic(fmt.Sprintf("pup: unpacking underflow at %d+%d of %d", p.off, n, len(p.buf)))
		}
	}
	b := p.buf[p.off : p.off+n]
	p.off += n
	return b
}

// Uint64 pups a uint64.
func (p *Pup) Uint64(v *uint64) {
	b := p.need(8)
	switch p.mode {
	case Packing:
		binary.LittleEndian.PutUint64(b, *v)
	case Unpacking:
		*v = binary.LittleEndian.Uint64(b)
	}
}

// The composite helpers below (Int64, Int, Int32, Bool, Float64, Float32)
// write *v back only when unpacking. Packing and sizing traversals must be
// pure readers of the object graph: the optimistic backend PUP-snapshots a
// chare from a speculative phase on one worker while phases on other
// shards legitimately read state shared with it (zero-copy message
// payloads), and a same-value write-back is still a data race.

// Int64 pups an int64.
func (p *Pup) Int64(v *int64) {
	u := uint64(*v)
	p.Uint64(&u)
	if p.mode == Unpacking {
		*v = int64(u)
	}
}

// Int pups an int (always 8 bytes on the wire).
func (p *Pup) Int(v *int) {
	u := uint64(int64(*v))
	p.Uint64(&u)
	if p.mode == Unpacking {
		*v = int(int64(u))
	}
}

// Uint32 pups a uint32.
func (p *Pup) Uint32(v *uint32) {
	b := p.need(4)
	switch p.mode {
	case Packing:
		binary.LittleEndian.PutUint32(b, *v)
	case Unpacking:
		*v = binary.LittleEndian.Uint32(b)
	}
}

// Int32 pups an int32.
func (p *Pup) Int32(v *int32) {
	u := uint32(*v)
	p.Uint32(&u)
	if p.mode == Unpacking {
		*v = int32(u)
	}
}

// Uint8 pups a byte.
func (p *Pup) Uint8(v *uint8) {
	b := p.need(1)
	switch p.mode {
	case Packing:
		b[0] = *v
	case Unpacking:
		*v = b[0]
	}
}

// Bool pups a bool.
func (p *Pup) Bool(v *bool) {
	var u uint8
	if *v {
		u = 1
	}
	p.Uint8(&u)
	if p.mode == Unpacking {
		*v = u != 0
	}
}

// Float64 pups a float64.
func (p *Pup) Float64(v *float64) {
	u := math.Float64bits(*v)
	p.Uint64(&u)
	if p.mode == Unpacking {
		*v = math.Float64frombits(u)
	}
}

// Float32 pups a float32.
func (p *Pup) Float32(v *float32) {
	u := math.Float32bits(*v)
	p.Uint32(&u)
	if p.mode == Unpacking {
		*v = math.Float32frombits(u)
	}
}

// String pups a string with a length prefix.
func (p *Pup) String(v *string) {
	n := len(*v)
	p.Int(&n)
	if p.mode == Sizing {
		p.off += n
		return
	}
	b := p.need(n)
	switch p.mode {
	case Packing:
		copy(b, *v)
	case Unpacking:
		*v = string(b)
	}
}

// BytesSlice pups a []byte with a length prefix.
func (p *Pup) BytesSlice(v *[]byte) {
	n := len(*v)
	p.Int(&n)
	if p.mode == Sizing {
		p.off += n
		return
	}
	if p.mode == Unpacking {
		if n == 0 {
			*v = nil
		} else {
			*v = make([]byte, n)
		}
	}
	b := p.need(n)
	switch p.mode {
	case Packing:
		copy(b, *v)
	case Unpacking:
		copy(*v, b)
	}
}

// Virtual advances the cursor by n bytes of modeled payload without
// materializing application data: AMPI rank-chares use it so migration and
// checkpoint costs reflect the declared state size (the iso-malloc'd rank
// memory) without allocating it.
func (p *Pup) Virtual(n int) {
	if n < 0 {
		panic("pup: negative virtual size")
	}
	if p.mode == Sizing {
		p.off += n
		return
	}
	b := p.need(n)
	if p.mode == Packing {
		for i := range b {
			b[i] = 0
		}
	}
}

// Float64s pups a []float64 with a length prefix.
func (p *Pup) Float64s(v *[]float64) {
	Slice(p, v, (*Pup).Float64)
}

// Ints pups a []int with a length prefix.
func (p *Pup) Ints(v *[]int) {
	Slice(p, v, (*Pup).Int)
}

// Uint64s pups a []uint64 with a length prefix.
func (p *Pup) Uint64s(v *[]uint64) {
	Slice(p, v, (*Pup).Uint64)
}

// Slice pups any slice given an element pup function, resizing on unpack.
// It is the Go analogue of Charm++'s PUParray.
func Slice[T any](p *Pup, v *[]T, elem func(*Pup, *T)) {
	n := len(*v)
	p.Int(&n)
	if p.IsUnpacking() {
		if n == 0 {
			*v = nil
		} else {
			*v = make([]T, n)
		}
	}
	for i := range *v {
		elem(p, &(*v)[i])
	}
}

// cursorPool recycles Pup cursors: Size sits on the runtime's per-send
// message-sizing path, where a fresh cursor per call is pure garbage.
var cursorPool = sync.Pool{New: func() any { return new(Pup) }}

// Size measures the serialized size of obj.
func Size(obj Pupable) int {
	s := cursorPool.Get().(*Pup)
	*s = Pup{mode: Sizing}
	obj.Pup(s)
	n := s.off
	s.buf = nil
	cursorPool.Put(s)
	return n
}

// Pack serializes obj into a fresh buffer.
func Pack(obj Pupable) []byte {
	return PackTo(nil, obj)
}

// PackTo serializes obj into buf, reusing its capacity and growing it as
// needed; it returns the packed bytes. Pair with GetBuffer/PutBuffer to
// recycle pack buffers across migrations and checkpoints.
func PackTo(buf []byte, obj Pupable) []byte {
	n := Size(obj)
	if cap(buf) < n {
		buf = make([]byte, n)
	} else {
		buf = buf[:n]
	}
	pk := cursorPool.Get().(*Pup)
	*pk = Pup{mode: Packing, buf: buf}
	obj.Pup(pk)
	off := pk.off
	pk.buf = nil
	cursorPool.Put(pk)
	if off != n {
		panic(fmt.Sprintf("pup: sizing/packing disagreement: %d vs %d (unstable Pup method?)", off, n))
	}
	return buf
}

// bufPool recycles pack buffers (as *[]byte to keep Put allocation-free in
// the common already-pooled case).
var bufPool sync.Pool

// GetBuffer returns a zero-length buffer from the pack-buffer pool; grow it
// through PackTo and return it with PutBuffer.
func GetBuffer() []byte {
	if b, ok := bufPool.Get().(*[]byte); ok {
		return (*b)[:0]
	}
	return nil
}

// PutBuffer returns a buffer (typically the result of PackTo on a GetBuffer
// buffer) to the pool. The caller must not retain it.
func PutBuffer(b []byte) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	bufPool.Put(&b)
}

// Unpack restores obj from data, returning an error if the Pup method does
// not consume the buffer exactly.
func Unpack(data []byte, obj Pupable) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("pup: unpack: %v", r)
		}
	}()
	up := NewUnpacker(data)
	obj.Pup(up)
	if up.Bytes() != len(data) {
		return fmt.Errorf("pup: unpack consumed %d of %d bytes", up.Bytes(), len(data))
	}
	return nil
}

// Strings pups a []string with a length prefix.
func (p *Pup) Strings(v *[]string) {
	Slice(p, v, (*Pup).String)
}

// Int32s pups a []int32 with a length prefix.
func (p *Pup) Int32s(v *[]int32) {
	Slice(p, v, (*Pup).Int32)
}

// Map pups a map with deterministic (sorted-key) encoding; keyLess orders
// keys, and the key/value pup functions handle the entries. On unpacking
// the map is replaced.
func Map[K comparable, V any](p *Pup, m *map[K]V, keyLess func(a, b K) bool,
	pupK func(*Pup, *K), pupV func(*Pup, *V)) {
	n := len(*m)
	p.Int(&n)
	if p.IsUnpacking() {
		*m = make(map[K]V, n)
		for i := 0; i < n; i++ {
			var k K
			var v V
			pupK(p, &k)
			pupV(p, &v)
			(*m)[k] = v
		}
		return
	}
	keys := make([]K, 0, len(*m))
	for k := range *m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keyLess(keys[i], keys[j]) })
	for _, k := range keys {
		v := (*m)[k]
		pupK(p, &k)
		pupV(p, &v)
	}
}
