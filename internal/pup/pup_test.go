package pup

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

// demo mirrors the paper's Fig 3 example class.
type demo struct {
	Foo  int
	Bar  []float64
	Name string
	Flag bool
	Blob []byte
	U32  uint32
	F32  float32
	I64  int64
	B    uint8
}

func (d *demo) Pup(p *Pup) {
	p.Int(&d.Foo)
	p.Float64s(&d.Bar)
	p.String(&d.Name)
	p.Bool(&d.Flag)
	p.BytesSlice(&d.Blob)
	p.Uint32(&d.U32)
	p.Float32(&d.F32)
	p.Int64(&d.I64)
	p.Uint8(&d.B)
}

func TestRoundTrip(t *testing.T) {
	in := &demo{
		Foo:  -42,
		Bar:  []float64{1.5, -2.25, math.Pi},
		Name: "chare",
		Flag: true,
		Blob: []byte{0, 1, 255},
		U32:  0xdeadbeef,
		F32:  3.5,
		I64:  -1 << 62,
		B:    200,
	}
	data := Pack(in)
	out := &demo{}
	if err := Unpack(data, out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
}

func TestSizeMatchesPack(t *testing.T) {
	d := &demo{Bar: make([]float64, 17), Name: "x", Blob: make([]byte, 3)}
	if got, want := Size(d), len(Pack(d)); got != want {
		t.Fatalf("Size=%d, len(Pack)=%d", got, want)
	}
}

func TestEmptyValues(t *testing.T) {
	in := &demo{}
	out := &demo{Foo: 7, Bar: []float64{9}, Name: "junk"}
	if err := Unpack(Pack(in), out); err != nil {
		t.Fatal(err)
	}
	if out.Foo != 0 || len(out.Bar) != 0 || out.Name != "" {
		t.Fatalf("unpack did not overwrite prior state: %+v", out)
	}
}

func TestUnpackShortBuffer(t *testing.T) {
	data := Pack(&demo{Name: "hello"})
	if err := Unpack(data[:len(data)-3], &demo{}); err == nil {
		t.Fatal("truncated buffer should error")
	}
}

func TestUnpackTrailingGarbage(t *testing.T) {
	data := append(Pack(&demo{}), 0xff)
	if err := Unpack(data, &demo{}); err == nil {
		t.Fatal("trailing bytes should error")
	}
}

func TestModeString(t *testing.T) {
	if Sizing.String() != "sizing" || Packing.String() != "packing" || Unpacking.String() != "unpacking" {
		t.Fatal("mode strings wrong")
	}
	if Mode(9).String() == "" {
		t.Fatal("unknown mode string empty")
	}
}

func TestPackingOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("packing into a short buffer should panic")
		}
	}()
	pk := NewPacker(make([]byte, 2))
	v := 5
	pk.Int(&v)
}

type nested struct {
	Rows [][]float64
	Kids []demo
}

func (n *nested) Pup(p *Pup) {
	Slice(p, &n.Rows, func(p *Pup, r *[]float64) { p.Float64s(r) })
	Slice(p, &n.Kids, func(p *Pup, d *demo) { d.Pup(p) })
}

func TestNestedSlices(t *testing.T) {
	in := &nested{
		Rows: [][]float64{{1, 2}, nil, {3}},
		Kids: []demo{{Foo: 1, Name: "a"}, {Foo: 2, Name: "b", Bar: []float64{4}}},
	}
	out := &nested{}
	if err := Unpack(Pack(in), out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("nested mismatch: %+v vs %+v", in, out)
	}
}

func TestNaNRoundTrip(t *testing.T) {
	in := &demo{Bar: []float64{math.NaN(), math.Inf(1), math.Inf(-1)}}
	out := &demo{}
	if err := Unpack(Pack(in), out); err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(out.Bar[0]) || !math.IsInf(out.Bar[1], 1) || !math.IsInf(out.Bar[2], -1) {
		t.Fatalf("special floats mangled: %v", out.Bar)
	}
}

// Property: arbitrary demo values survive a round trip.
func TestPropertyRoundTrip(t *testing.T) {
	f := func(foo int, bar []float64, name string, flag bool, blob []byte, u32 uint32, i64 int64, b uint8) bool {
		for i, x := range bar {
			if math.IsNaN(x) {
				bar[i] = 0 // NaN breaks DeepEqual, tested separately above
			}
		}
		in := &demo{Foo: foo, Bar: bar, Name: name, Flag: flag, Blob: blob, U32: u32, I64: i64, B: b}
		out := &demo{}
		if err := Unpack(Pack(in), out); err != nil {
			return false
		}
		// Normalize nil vs empty slices, which DeepEqual distinguishes.
		if len(in.Bar) == 0 {
			in.Bar, out.Bar = nil, nil
		}
		if len(in.Blob) == 0 {
			in.Blob, out.Blob = nil, nil
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Size always equals the packed length.
func TestPropertySizeConsistent(t *testing.T) {
	f := func(bar []float64, name string, blob []byte) bool {
		d := &demo{Bar: bar, Name: name, Blob: blob}
		return Size(d) == len(Pack(d))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPackUnpack(b *testing.B) {
	d := &demo{Bar: make([]float64, 256), Blob: make([]byte, 1024), Name: "bench"}
	out := &demo{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Unpack(Pack(d), out); err != nil {
			b.Fatal(err)
		}
	}
}

func TestStringsAndInt32s(t *testing.T) {
	type holder struct {
		S []string
		I []int32
	}
	h := &holder{S: []string{"a", "", "chare"}, I: []int32{-1, 0, 1 << 30}}
	sz := NewSizer()
	sz.Strings(&h.S)
	sz.Int32s(&h.I)
	buf := make([]byte, sz.Bytes())
	pk := NewPacker(buf)
	pk.Strings(&h.S)
	pk.Int32s(&h.I)
	out := &holder{}
	up := NewUnpacker(buf)
	up.Strings(&out.S)
	up.Int32s(&out.I)
	if !reflect.DeepEqual(h, out) {
		t.Fatalf("round trip: %+v vs %+v", h, out)
	}
}

func TestMapDeterministicRoundTrip(t *testing.T) {
	m := map[int]string{7: "seven", 1: "one", 3: "three"}
	pupIt := func(p *Pup, mm *map[int]string) {
		Map(p, mm, func(a, b int) bool { return a < b },
			(*Pup).Int, (*Pup).String)
	}
	encode := func(mm map[int]string) []byte {
		sz := NewSizer()
		pupIt(sz, &mm)
		buf := make([]byte, sz.Bytes())
		pk := NewPacker(buf)
		pupIt(pk, &mm)
		return buf
	}
	a := encode(m)
	// Deterministic: re-encoding (with Go's randomized map order) yields
	// identical bytes.
	for i := 0; i < 5; i++ {
		if b := encode(m); !bytes.Equal(a, b) {
			t.Fatal("map encoding not deterministic")
		}
	}
	var got map[int]string
	up := NewUnpacker(a)
	pupIt(up, &got)
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("map round trip: %v vs %v", m, got)
	}
}
