package puptest

import (
	"strings"
	"testing"

	"charmgo/internal/pup"
)

type complete struct {
	A  int
	B  []float64
	S  string
	Ok bool
}

func (c *complete) Pup(p *pup.Pup) {
	p.Int(&c.A)
	p.Float64s(&c.B)
	p.String(&c.S)
	p.Bool(&c.Ok)
}

// dropper forgets Lost: byte round-trips still agree (the field is never
// serialized), but deep equality must expose the loss.
type dropper struct {
	A    int
	Lost float64
}

func (d *dropper) Pup(p *pup.Pup) { p.Int(&d.A) }

// swapper packs A then B but unpacks them crossed — the asymmetric-Pup bug
// the byte comparison catches.
type swapper struct {
	A, B int
}

func (s *swapper) Pup(p *pup.Pup) {
	if p.IsUnpacking() {
		p.Int(&s.B)
		p.Int(&s.A)
		return
	}
	p.Int(&s.A)
	p.Int(&s.B)
}

func TestRoundTripComplete(t *testing.T) {
	obj := &complete{A: 7, B: []float64{1.5, -2.25}, S: "chare", Ok: true}
	if err := RoundTripEqual(obj); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripEqualCatchesDroppedField(t *testing.T) {
	obj := &dropper{A: 1, Lost: 3.14}
	if err := RoundTrip(obj); err != nil {
		t.Fatalf("byte round trip should not see the dropped field: %v", err)
	}
	err := RoundTripEqual(obj)
	if err == nil || !strings.Contains(err.Error(), "differs") {
		t.Fatalf("want deep-equality failure, got %v", err)
	}
}

func TestRoundTripCatchesAsymmetricPup(t *testing.T) {
	if err := RoundTrip(&swapper{A: 1, B: 2}); err == nil {
		t.Fatal("want re-serialization mismatch for asymmetric Pup")
	}
	if err := RoundTrip(&swapper{A: 5, B: 5}); err != nil {
		t.Fatalf("symmetric values cannot expose the swap: %v", err)
	}
}

func TestRoundTripRejectsNonPointer(t *testing.T) {
	var nilObj *complete
	if err := RoundTrip(nilObj); err == nil {
		t.Fatal("want error for nil pointer")
	}
}
