// Package puptest provides conformance helpers for Pup methods: every
// migratable type should survive the full sizing → packing → unpacking
// cycle with no state loss. Used together with charmvet's static pupcheck
// (internal/analysis), this closes both halves of the PUP contract: the
// analyzer proves every field is mentioned, the round trip proves the
// mentions actually reconstruct the object.
package puptest

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"charmgo/internal/pup"
)

// RoundTrip drives obj through all three traversal modes: it sizes and
// packs obj (pup.Pack panics on any sizing/packing disagreement), unpacks
// the bytes into a freshly allocated instance of the same type, and
// verifies the restored instance re-serializes to identical bytes. Fields
// deliberately outside the Pup contract (//pup:skip) do not participate,
// so this is the right check for chare structs carrying runtime wiring.
func RoundTrip(obj pup.Pupable) error {
	buf, fresh, err := cycle(obj)
	if err != nil {
		return err
	}
	re := pup.Pack(fresh)
	if !bytes.Equal(buf, re) {
		return fmt.Errorf("puptest: %T: restored state re-serializes differently (%d vs %d bytes)", obj, len(buf), len(re))
	}
	return nil
}

// RoundTripEqual is RoundTrip plus deep equality of the restored instance:
// use it for types whose every field is pupped (no //pup:skip waivers).
func RoundTripEqual(obj pup.Pupable) error {
	if err := RoundTrip(obj); err != nil {
		return err
	}
	_, fresh, err := cycle(obj)
	if err != nil {
		return err
	}
	if !reflect.DeepEqual(obj, fresh) {
		return fmt.Errorf("puptest: %T: restored instance differs:\n  packed:   %+v\n  restored: %+v", obj, obj, fresh)
	}
	return nil
}

// cycle packs obj and unpacks it into a fresh zero instance.
func cycle(obj pup.Pupable) (buf []byte, fresh pup.Pupable, err error) {
	rv := reflect.ValueOf(obj)
	if rv.Kind() != reflect.Pointer || rv.IsNil() {
		return nil, nil, fmt.Errorf("puptest: need a non-nil pointer, got %T", obj)
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("puptest: %T: %v", obj, r)
		}
	}()
	buf = pup.Pack(obj)
	fresh = reflect.New(rv.Type().Elem()).Interface().(pup.Pupable)
	if err := pup.Unpack(buf, fresh); err != nil {
		return nil, nil, fmt.Errorf("puptest: %T: %v", obj, err)
	}
	return buf, fresh, nil
}

// Check round-trips each object, failing t for every violation. Objects
// should carry representative non-zero state so a dropped field actually
// changes the serialization.
func Check(t testing.TB, objs ...pup.Pupable) {
	t.Helper()
	for _, obj := range objs {
		if err := RoundTrip(obj); err != nil {
			t.Error(err)
		}
	}
}

// CheckEqual is Check with the strict deep-equality variant.
func CheckEqual(t testing.TB, objs ...pup.Pupable) {
	t.Helper()
	for _, obj := range objs {
		if err := RoundTripEqual(obj); err != nil {
			t.Error(err)
		}
	}
}
