package optsim

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"charmgo/internal/des"
)

// sliceCtrl is a minimal speculation controller for engine-level tests:
// the "shard state" is one int64 per shard, snapshotted at BeginSpec and
// restored at RollbackSpec — the same contract charm's controller honours
// with PUP snapshots of dirty chares.
type sliceCtrl struct {
	state []int64
	snap  []int64

	begun      int
	committed  int
	rolledBack int
}

func newSliceCtrl(shards int) *sliceCtrl {
	return &sliceCtrl{state: make([]int64, shards), snap: make([]int64, shards)}
}

func (c *sliceCtrl) BeginSpec(s int)    { c.snap[s] = c.state[s]; c.begun++ }
func (c *sliceCtrl) CommitSpec(s int)   { c.committed++ }
func (c *sliceCtrl) RollbackSpec(s int) { c.state[s] = c.snap[s]; c.rolledBack++ }

// balanced asserts every speculation was either committed or rolled back.
func (c *sliceCtrl) balanced(t *testing.T) {
	t.Helper()
	if c.begun != c.committed+c.rolledBack {
		t.Fatalf("speculation ledger unbalanced: begun %d, committed %d, rolled back %d",
			c.begun, c.committed, c.rolledBack)
	}
}

func mkEngine(shards, workers int) (*Engine, *sliceCtrl) {
	e := New(Options{Shards: shards, Workers: workers})
	c := newSliceCtrl(shards)
	e.SetController(c)
	return e, c
}

// TestCommitOrderMatchesSequential: commits land in (timestamp, seq) heap
// order regardless of which phases were speculated or when they finished.
func TestCommitOrderMatchesSequential(t *testing.T) {
	e, c := mkEngine(4, 4)
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		e.AtShard(i, 0.1+0.01*des.Time(i), func() func() {
			return func() { order = append(order, i) }
		})
	}
	e.Run()
	for i, got := range order {
		if got != i {
			t.Fatalf("commit order %v, want shards in timestamp order", order)
		}
	}
	if e.Executed() != 4 {
		t.Fatalf("executed %d, want 4", e.Executed())
	}
	c.balanced(t)
}

// TestSpeculatesPastAnyWindow: the whole point of optimism — a phase five
// virtual seconds past the heap top (far outside any α lookahead) runs
// concurrently with the driver's inline phase.
func TestSpeculatesPastAnyWindow(t *testing.T) {
	e, _ := mkEngine(2, 2)
	peerStarted := make(chan struct{})
	e.AtShard(0, 0.1, func() func() {
		select {
		case <-peerStarted: // the speculated far-future phase already ran
		case <-time.After(5 * time.Second):
			t.Error("speculative phase never started while the driver phase ran")
		}
		return nil
	})
	e.AtShard(1, 5.0, func() func() {
		close(peerStarted)
		return nil
	})
	e.Run()
	if e.stats.Launched == 0 {
		t.Fatal("no speculative launch recorded")
	}
}

// TestWindowBoundsOptimism: with a finite Window the far-future phase is
// not speculated.
func TestWindowBoundsOptimism(t *testing.T) {
	e := New(Options{Shards: 2, Workers: 2, Window: 1.0})
	e.SetController(newSliceCtrl(2))
	e.AtShard(0, 0.1, func() func() { return nil })
	e.AtShard(1, 5.0, func() func() { return nil })
	e.Run()
	if e.stats.Launched != 0 {
		t.Fatalf("launched %d speculations past a 1.0 window", e.stats.Launched)
	}
}

// TestStragglerRollback: shard 1 speculates at t=5.0; shard 0's commit then
// schedules shard-1 work at t=1.0 — a straggler. Where parsim panics, the
// optimistic engine rolls shard 1 back (restoring its state), runs the
// straggler, and re-executes the 5.0 event, committing in sequential order.
func TestStragglerRollback(t *testing.T) {
	e, c := mkEngine(2, 2)
	c.state[1] = 10
	var order []string
	e.AtShard(0, 0.1, func() func() {
		return func() {
			order = append(order, "A")
			e.AtShard(1, 1.0, func() func() {
				c.state[1] += 5
				return func() { order = append(order, fmt.Sprintf("S=%d", c.state[1])) }
			})
		}
	})
	e.AtShard(1, 5.0, func() func() {
		c.state[1]++
		return func() { order = append(order, fmt.Sprintf("B=%d", c.state[1])) }
	})
	e.Run()
	// Sequentially: A commits, straggler runs (10+5=15), then B (16). The
	// speculative increment that ran first must have been undone.
	want := []string{"A", "S=15", "B=16"}
	if len(order) != len(want) {
		t.Fatalf("commit order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("commit order %v, want %v", order, want)
		}
	}
	if c.rolledBack != 1 {
		t.Fatalf("rolled back %d speculations, want 1", c.rolledBack)
	}
	if e.stats.RolledBack != 1 || e.stats.Launched != 1 {
		t.Fatalf("stats %+v, want Launched=1 RolledBack=1", e.stats)
	}
	c.balanced(t)
}

// TestSameTimestampIsNotAStraggler: a new event at exactly the speculated
// timestamp orders after it by sequence number — no rollback.
func TestSameTimestampIsNotAStraggler(t *testing.T) {
	e, c := mkEngine(2, 2)
	var order []string
	e.AtShard(0, 0.1, func() func() {
		return func() {
			order = append(order, "A")
			e.AtShard(1, 5.0, func() func() {
				return func() { order = append(order, "C") }
			})
		}
	})
	e.AtShard(1, 5.0, func() func() {
		return func() { order = append(order, "B") }
	})
	e.Run()
	want := []string{"A", "B", "C"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("commit order %v, want %v", order, want)
		}
	}
	if c.rolledBack != 0 {
		t.Fatalf("rolled back %d, want 0 — equal timestamps are not stragglers", c.rolledBack)
	}
}

// TestGlobalStragglerRollsBackLaterSpeculations: a global event scheduled
// below in-flight speculations rolls back every speculation past it, then
// runs solo — the zero-in-flight guarantee globals rely on.
func TestGlobalStragglerRollsBackLaterSpeculations(t *testing.T) {
	e, c := mkEngine(3, 3)
	var order []string
	e.AtShard(0, 0.1, func() func() {
		return func() {
			order = append(order, "A")
			e.At(1.0, func() { order = append(order, "g") })
		}
	})
	e.AtShard(1, 5.0, func() func() {
		c.state[1]++
		return func() { order = append(order, "B") }
	})
	e.AtShard(2, 6.0, func() func() {
		c.state[2]++
		return func() { order = append(order, "C") }
	})
	e.Run()
	want := []string{"A", "g", "B", "C"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("commit order %v, want %v", order, want)
		}
	}
	if c.rolledBack != 2 {
		t.Fatalf("rolled back %d speculations for the global straggler, want 2", c.rolledBack)
	}
	if c.state[1] != 1 || c.state[2] != 1 {
		t.Fatalf("shard state %v after run, want each incremented exactly once", c.state)
	}
	c.balanced(t)
}

// TestCancelInFlightRollsBack: cancelling a speculated event is an
// ordinary straggler here (parsim panics): the speculation is undone and
// the event never commits.
func TestCancelInFlightRollsBack(t *testing.T) {
	e, c := mkEngine(2, 2)
	var fired bool
	h := e.AtShard(1, 5.0, func() func() {
		c.state[1]++
		fired = true
		return func() { t.Error("cancelled event's commit ran") }
	})
	e.AtShard(0, 0.1, func() func() {
		return func() { e.Cancel(h) }
	})
	e.Run()
	if c.rolledBack != 1 {
		t.Fatalf("rolled back %d, want 1", c.rolledBack)
	}
	if c.state[1] != 0 {
		t.Fatalf("shard 1 state %d after cancelled speculation, want 0", c.state[1])
	}
	if e.Pending() != 0 {
		t.Fatalf("pending %d after run, want 0", e.Pending())
	}
	_ = fired // the phase may legitimately have run before the cancel
	c.balanced(t)
}

// TestStopRollsBackInFlight: Stop returns with machine state exactly where
// the sequential engine would stop — in-flight speculations are undone,
// and resuming re-executes and commits them.
func TestStopRollsBackInFlight(t *testing.T) {
	e, c := mkEngine(2, 2)
	var committed []int
	e.AtShard(0, 0.1, func() func() {
		return func() {
			committed = append(committed, 0)
			e.Stop()
		}
	})
	e.AtShard(1, 5.0, func() func() {
		c.state[1]++
		return func() { committed = append(committed, 1) }
	})
	e.Run()
	if len(committed) != 1 || committed[0] != 0 {
		t.Fatalf("committed %v after Stop, want [0]", committed)
	}
	if c.state[1] != 0 {
		t.Fatalf("shard 1 state %d after Stop, want 0 — speculation must be undone", c.state[1])
	}
	e.Run() // resume: the event re-executes and commits
	if len(committed) != 2 || committed[1] != 1 {
		t.Fatalf("committed %v after resume, want [0 1]", committed)
	}
	if c.state[1] != 1 {
		t.Fatalf("shard 1 state %d after resume, want 1", c.state[1])
	}
	c.balanced(t)
}

// TestRunUntil bounds execution by the horizon (no speculation past it)
// and advances the clock.
func TestRunUntil(t *testing.T) {
	e, c := mkEngine(2, 2)
	var ran []des.Time
	for _, at := range []des.Time{0.1, 0.2, 0.9} {
		at := at
		e.AtShard(int(at*10)%2, at, func() func() {
			return func() { ran = append(ran, at) }
		})
	}
	e.RunUntil(0.5)
	if len(ran) != 2 {
		t.Fatalf("ran %v, want the two events <= 0.5", ran)
	}
	if e.Now() != 0.5 {
		t.Fatalf("clock %v, want 0.5", e.Now())
	}
	e.RunUntil(1.0)
	if len(ran) != 3 || e.Now() != 1.0 {
		t.Fatalf("ran %v now %v, want all three events and now=1.0", ran, e.Now())
	}
	c.balanced(t)
}

// TestPhasePanicPropagatesDeterministically: the first panicking event in
// heap order is the one re-raised, regardless of worker interleaving.
func TestPhasePanicPropagatesDeterministically(t *testing.T) {
	e, _ := mkEngine(4, 4)
	for i := 0; i < 4; i++ {
		i := i
		e.AtShard(i, 0.1+0.001*des.Time(i), func() func() {
			if i >= 1 {
				panic(i)
			}
			return nil
		})
	}
	defer func() {
		if r := recover(); r != 1 {
			t.Fatalf("recovered %v, want panic value 1 (lowest panicking event)", r)
		}
	}()
	e.Run()
}

// TestStragglerDiscardsSpeculativePanic: a speculation that panicked is
// rolled back by a straggler before its pop; the re-execution succeeds, so
// the panic never surfaces — exactly what the sequential engine, which
// would have run the straggler first, observes.
func TestStragglerDiscardsSpeculativePanic(t *testing.T) {
	e, c := mkEngine(2, 2)
	var attempts atomic.Int64
	var order []string
	e.AtShard(0, 0.1, func() func() {
		return func() {
			order = append(order, "A")
			e.AtShard(1, 1.0, func() func() {
				return func() { order = append(order, "S") }
			})
		}
	})
	e.AtShard(1, 5.0, func() func() {
		if attempts.Add(1) == 1 {
			panic("speculative execution saw pre-straggler state")
		}
		return func() { order = append(order, "B") }
	})
	e.Run()
	want := []string{"A", "S", "B"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("commit order %v, want %v", order, want)
		}
	}
	if got := attempts.Load(); got != 2 {
		t.Fatalf("phase ran %d times, want 2 (panicked speculation + clean re-run)", got)
	}
	if c.rolledBack != 1 {
		t.Fatalf("rolled back %d, want 1", c.rolledBack)
	}
}

// TestGlobalHorizonIsNow: the optimistic engine's safe horizon for global
// events is the commit frontier itself, matching the sequential engine —
// a global below an in-flight speculation is a straggler, not a violation.
func TestGlobalHorizonIsNow(t *testing.T) {
	e, _ := mkEngine(2, 2)
	var horizon des.Time = -1
	e.AtShard(0, 0.25, func() func() {
		return func() { horizon = des.EngineHorizon(e) }
	})
	e.AtShard(1, 5.0, func() func() { return nil })
	e.Run()
	if horizon != 0.25 {
		t.Fatalf("horizon %v with a speculation at 5.0 in flight, want Now()=0.25", horizon)
	}
	if e.GVT() != e.Now() {
		t.Fatalf("GVT %v != Now %v", e.GVT(), e.Now())
	}
}

// tortureWorkload drives an engine through a seeded self-expanding event
// web: every commit schedules near-future follow-ons on pseudorandom
// shards (straggler bait for whatever those shards have speculated) plus
// occasional far-future work (speculation depth) and global events
// (forced rollbacks of everything in flight). Phase bodies mutate
// per-shard state; commits log shard, timestamp, and state, so the log
// captures both order and the correctness of every rollback restore.
func tortureWorkload(e des.Engine, state []int64, shards int) []string {
	var log []string
	rng := uint64(0x9e3779b97f4a7c15)
	next := func(n uint64) uint64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return (rng >> 33) % n
	}
	budget := 2500
	var sched func(shard int, t des.Time)
	sched = func(shard int, t des.Time) {
		e.AtShard(shard, t, func() func() {
			state[shard] = state[shard]*3 + int64(shard) + 1
			v := state[shard]
			return func() {
				log = append(log, fmt.Sprintf("%d@%.9f=%d", shard, t, v))
				if budget <= 0 {
					return
				}
				budget--
				// Near follow-on: lands close behind the frontier, below
				// most speculated timestamps on its target shard.
				sched(int(next(uint64(shards))), e.Now()+1e-6+des.Time(next(1000))*1e-5)
				if next(4) == 0 {
					// Far follow-on: keeps shards speculating deep.
					sched(int(next(uint64(shards))), e.Now()+2.0+des.Time(next(100))*1e-3)
				}
				if next(40) == 0 {
					at := e.Now() + 1e-6
					e.At(at, func() {
						log = append(log, fmt.Sprintf("g@%.9f", at))
					})
				}
			}
		})
	}
	for s := 0; s < shards; s++ {
		// Spread the seeds a full virtual second apart so every shard
		// starts far outside any conservative lookahead window.
		sched(s, 0.1+des.Time(s))
	}
	e.Run()
	return log
}

// TestTortureCascadesMatchSequential is the rollback-cascade torture test:
// thousands of events whose commits continually schedule into the past of
// deep speculations, on several worker counts, must produce a commit log —
// order, timestamps, and rolled-back-and-restored shard state — byte-equal
// to the sequential engine's.
func TestTortureCascadesMatchSequential(t *testing.T) {
	const shards = 8
	seqState := make([]int64, shards)
	want := tortureWorkload(des.NewEngine(), seqState, shards)
	if len(want) < 2000 {
		t.Fatalf("torture workload produced only %d events; the web failed to expand", len(want))
	}

	for _, workers := range []int{1, 2, 8} {
		e, c := mkEngine(shards, workers)
		got := tortureWorkload(e, c.state, shards)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d committed events, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: commit %d = %q, want %q", workers, i, got[i], want[i])
			}
		}
		for s := range seqState {
			if c.state[s] != seqState[s] {
				t.Fatalf("workers=%d: shard %d final state %d, want %d", workers, s, c.state[s], seqState[s])
			}
		}
		c.balanced(t)
		if workers == 8 && e.stats.RolledBack == 0 {
			t.Fatal("torture run never rolled back — the cascade pressure is gone")
		}
	}
}

// TestSpeculationStatsDeterministic: launch and rollback decisions depend
// only on heap state at each step, never on worker timing, so the full
// speculation ledger is identical run-to-run.
func TestSpeculationStatsDeterministic(t *testing.T) {
	run := func() (Stats, []string) {
		e, c := mkEngine(8, 4)
		log := tortureWorkload(e, c.state, 8)
		return e.EngineStats(), log
	}
	s1, l1 := run()
	s2, l2 := run()
	if s1 != s2 {
		t.Fatalf("speculation stats diverged between identical runs:\n%+v\n%+v", s1, s2)
	}
	if len(l1) != len(l2) {
		t.Fatalf("log lengths diverged: %d vs %d", len(l1), len(l2))
	}
	if s1.Launched == 0 || s1.RolledBack == 0 {
		t.Fatalf("stats %+v: expected both speculation and rollback activity", s1)
	}
	if s1.WastedFraction() <= 0 || s1.WastedFraction() >= 1 {
		t.Fatalf("wasted fraction %v out of (0,1)", s1.WastedFraction())
	}
}
