// Package optsim is the optimistic (Time Warp) parallel execution backend
// for the virtual machine: a des.Engine that speculatively executes event
// phases beyond any lookahead window, rolls the affected shard back when a
// straggler arrives in its speculated past, and commits global effects
// strictly in (timestamp, sequence) order — so every run is bit-for-bit
// identical to internal/des.Sequential, exactly like the conservative
// engine of internal/parsim.
//
// # Why optimism
//
// The conservative engine may only run a shard's phase early when the
// machine's lookahead α proves no earlier event can still reach that shard.
// On low-α machine models the window admits almost no concurrency even
// when the workload is embarrassingly parallel in practice (most messages
// arrive much later than α). Time Warp inverts the bet: run every shard's
// earliest pending phase now, detect the rare conflicting arrival, and pay
// for it with a rollback.
//
// # Design
//
// The engine keeps the same single global heap and single driving goroutine
// as parsim: events pop and commit in exact (at, seq) order, one at a time.
// What changes is the launch rule and its safety net:
//
//   - Launch: before every pop, each shard's earliest pending two-phase
//     event is handed to a worker — regardless of how far its timestamp
//     lies beyond the heap top (bounded only by the optional optimism
//     Window). A per-shard lazy-deletion min-heap tracks the shard minima,
//     so the scan costs O(shards), not O(heap). At most one phase per
//     shard is ever in flight, and never an event that follows the
//     earliest pending global event (globals may touch every shard, so by
//     the time one pops, every speculated phase has already committed and
//     in-flight count is provably zero — the same solo-global guarantee
//     the conservative engine enforces with its window).
//
//   - Straggler detection: phases touch only shard-local state, and shard
//     state is mutated only by that shard's own commits — so the one way a
//     speculation can be wrong is a *new* event scheduled into its past.
//     Every scheduling entry point checks: a shard event earlier than the
//     shard's in-flight phase, or a global event earlier than any in-flight
//     phase, triggers a rollback of the affected shard(s) before the new
//     event is accepted. Where parsim's checkSchedule panics, optsim
//     recovers.
//
//   - Rollback: the engine waits for the phase to finish, discards its
//     withheld commit closure, and asks the registered Controller to undo
//     the phase's shard-local mutations (the runtime snapshots dirty chares
//     with PUP before speculating — see charm's speculation controller).
//     Because every globally visible effect of a phase — sends, reduction
//     contributions, statistics — is buffered in the commit closure, which
//     never ran, cancelling a speculation requires no anti-messages: the
//     "sent" messages never entered the network. The event stays scheduled
//     and simply runs again later, possibly inline at its pop.
//
//   - GVT and fossil collection: commits are serialized on the driver in
//     (at, seq) order, so the Global Virtual Time is exact, not estimated —
//     it is the timestamp of the last popped event (Now()). When a
//     speculated event pops and its commit is used, the Controller's
//     CommitSpec releases the shard's snapshot immediately: fossil
//     collection is eager because nothing below the commit frontier can
//     ever be rolled back.
//
// Equivalence with the sequential engine is by construction: the pop order,
// sequence numbering, and commit order are identical, speculation only
// moves *phase* execution earlier in wall-clock time, and every misordered
// speculation is undone before its absence could be observed. Run/RunUntil
// additionally roll back all still-in-flight speculations before
// returning, so post-run machine state — not just committed output — is
// bit-identical to the sequential engine's.
package optsim

import (
	"container/heap"
	"fmt"
	"runtime"
	"sync"

	"charmgo/internal/des"
	"charmgo/internal/projections/metrics"
)

// Options configures an engine.
type Options struct {
	// Shards is the number of shards (virtual nodes). Events carry shard
	// ids in [0, Shards); ids outside the range are treated as global.
	Shards int
	// Workers caps the worker goroutines running phases; 0 means
	// GOMAXPROCS.
	Workers int
	// Window bounds optimism: phases launch only within [top, top+Window)
	// of the heap top. Zero means unbounded speculation. A finite window
	// trades exposed parallelism for rollback risk on workloads whose
	// cross-shard messages routinely land close to the frontier.
	Window des.Time
}

// Controller undoes speculative phase execution. The runtime registers one
// (charm's speculation controller); a nil controller disables speculation
// entirely — every event runs inline at its pop, which is correct but
// serial.
//
// All three methods are called from the driving goroutine. BeginSpec(s)
// runs before the phase is handed to a worker (the worker observes it
// through the job-channel happens-before edge); CommitSpec(s) runs after
// the speculated event's commit closure at its pop; RollbackSpec(s) runs
// after the phase has finished, when a straggler invalidated it.
type Controller interface {
	BeginSpec(shard int)
	CommitSpec(shard int)
	RollbackSpec(shard int)
}

// event mirrors parsim's event form: shard binding plus pipeline state.
type event struct {
	at    des.Time
	fn    func()        // global body (shard < 0)
	sfn   func() func() // sharded two-phase body (closure form)
	pfn   des.PhaseFn   // sharded two-phase body (preallocated form)
	cfn   des.CommitFn  // sharded commit-only body (never launched early)
	a     any
	b     int64
	seq   uint64
	pos   int // heap index, -1 when popped or cancelled
	shard int // -1 for global events

	// Pipeline state, owned by the driver except as noted.
	launched bool
	done     chan struct{} // closed by the worker when the phase finishes
	commit   func()        // written by the worker before close(done)
	pval     any           // captured phase panic, re-raised at pop
	panicked bool
	launchNs int64 // wall stamp at launch, 0 unless a probe is installed
}

// Live reports whether the event is still scheduled.
func (ev *event) Live() bool { return ev.pos >= 0 }

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].pos = i
	h[j].pos = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.pos = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.pos = -1
	*h = old[:n-1]
	return ev
}

// precedes reports whether a comes before b in the engine's total event
// order (timestamp, then scheduling sequence).
func precedes(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// lazyHeap is a secondary min-heap of events in (at, seq) order with lazy
// deletion: events that left the global heap (pos < 0 — popped or
// cancelled) are discarded when they surface at the top. The engine keeps
// one per shard (tracking each shard's earliest pending event) and one for
// globals, replacing parsim's window-bounded scan of the global heap —
// unbounded optimism has no window to bound such a scan with.
type lazyHeap []*event

func (h *lazyHeap) push(ev *event) {
	a := append(*h, ev)
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !precedes(ev, a[p]) {
			break
		}
		a[i] = a[p]
		i = p
	}
	a[i] = ev
	*h = a
}

// peek returns the earliest still-scheduled event, discarding dead
// entries, or nil when none remain.
func (h *lazyHeap) peek() *event {
	a := *h
	for len(a) > 0 {
		if top := a[0]; top.pos >= 0 {
			*h = a
			return top
		}
		n := len(a) - 1
		last := a[n]
		a[n] = nil
		a = a[:n]
		if n > 0 {
			i := 0
			for {
				c := 2*i + 1
				if c >= n {
					break
				}
				if r := c + 1; r < n && precedes(a[r], a[c]) {
					c = r
				}
				if !precedes(a[c], last) {
					break
				}
				a[i] = a[c]
				i = c
			}
			a[i] = last
		}
	}
	*h = a
	return nil
}

// Engine is the optimistic parallel event executor. It satisfies
// des.Engine. Its methods must be called from the driving goroutine (or
// from an event's commit) — the parallelism is internal.
type Engine struct {
	now      des.Time
	seq      uint64
	heap     eventHeap
	stopped  bool
	executed uint64

	window  des.Time
	workers int
	ctrl    Controller

	// Worker pool, alive only while Run/RunUntil executes.
	jobs   chan *event
	poolWG sync.WaitGroup

	// In-flight speculation tracking, owned by the driver.
	launchedOn []*event // per shard: the launched, not-yet-popped event
	inFlight   int      // count of launched, not-yet-popped events

	// Shard minima and pending globals, for the O(shards) launch scan.
	shardQ  []lazyHeap
	globals lazyHeap

	stats Stats
	sink  des.TraceSink
	ssink des.SpecSink
	probe des.Probe
}

// Stats aggregates speculation counters over the engine's lifetime. The
// driver's launch and rollback decisions depend only on heap state at each
// step — never on worker timing — so every counter is deterministic for a
// given workload and backend.
type Stats struct {
	Launched    uint64   // speculative phase executions (including re-runs after rollback)
	Committed   uint64   // speculations whose withheld commit was used at pop
	RolledBack  uint64   // speculations undone by a straggler, cancel, or run exit
	Inline      uint64   // sharded events run inline on the driver at pop
	Global      uint64   // global events (always inline, always with zero in flight)
	MaxInFlight int      // most concurrently speculated phases observed
	MaxGVTLag   des.Time // furthest a speculation ever ran ahead of the commit frontier
}

// WastedFraction is the fraction of speculative phase executions whose
// work was thrown away — the Time Warp overhead metric.
func (s Stats) WastedFraction() float64 {
	if s.Launched == 0 {
		return 0
	}
	return float64(s.RolledBack) / float64(s.Launched)
}

// RollbackRatio is rollbacks per committed event — how often the
// optimistic bet lost, normalized by useful progress.
func (s Stats) RollbackRatio() float64 {
	if c := s.Committed + s.Inline + s.Global; c > 0 {
		return float64(s.RolledBack) / float64(c)
	}
	return 0
}

// EngineStats returns the speculation counters accumulated so far.
func (e *Engine) EngineStats() Stats { return e.stats }

// SetController installs the speculation undo controller. Without one the
// engine never launches phases early.
func (e *Engine) SetController(c Controller) { e.ctrl = c }

// SetWindow replaces the optimism window (0 = unbounded). Driver-context
// only: launch eligibility reads the window fresh on every pop, so the
// change takes effect deterministically at the next launch decision —
// callers adjusting it from commit closures or Controller callbacks (which
// run on the driving goroutine) keep runs bit-identical across worker
// counts.
func (e *Engine) SetWindow(w des.Time) { e.window = w }

// Window reports the current optimism window (0 = unbounded).
func (e *Engine) Window() des.Time { return e.window }

// SetTraceSink installs (or, with nil, removes) the engine's phase-event
// sink. PhaseStart/PhaseDone are called only from the driving goroutine at
// the pop of each sharded event — the same positions, in the same total
// order, as the sequential engine. A sink that additionally implements
// des.SpecSink also receives speculation-pipeline events (launch, commit,
// rollback), which exist only on this backend.
func (e *Engine) SetTraceSink(s des.TraceSink) {
	e.sink = s
	e.ssink, _ = s.(des.SpecSink)
}

// SetProbe installs (or, with nil, removes) the engine's wall-clock
// telemetry probe (internal/telemetry). Strictly side-band: the probe
// observes speculation latency, rollback wall cost, and GVT lag, and
// nothing it returns influences scheduling. The zero-probe path is a nil
// check.
func (e *Engine) SetProbe(p des.Probe) { e.probe = p }

// GVT returns the Global Virtual Time: the commit frontier below which no
// rollback can ever occur. Commits are serialized on the driving
// goroutine, so GVT is exact — the timestamp of the last popped event —
// rather than the estimate a distributed Time Warp must compute.
func (e *Engine) GVT() des.Time { return e.now }

// GlobalHorizon reports the safe scheduling horizon for global events.
// Optimistic execution makes every instant safe: a global scheduled into a
// speculation's past triggers a rollback instead of a violation, so the
// horizon is simply Now() — exactly the sequential engine's answer, which
// keeps fault-recovery timing (chaos schedules its rollbacks at the
// horizon) bit-identical across the sequential and optimistic backends.
func (e *Engine) GlobalHorizon() des.Time { return e.now }

// RegisterMetrics exposes the engine's speculation counters through a
// metrics registry.
func (e *Engine) RegisterMetrics(reg *metrics.Registry) {
	reg.GaugeFunc("optsim.spec_launched", func() float64 { return float64(e.stats.Launched) })
	reg.GaugeFunc("optsim.spec_committed", func() float64 { return float64(e.stats.Committed) })
	reg.GaugeFunc("optsim.spec_rolled_back", func() float64 { return float64(e.stats.RolledBack) })
	reg.GaugeFunc("optsim.inline_events", func() float64 { return float64(e.stats.Inline) })
	reg.GaugeFunc("optsim.global_events", func() float64 { return float64(e.stats.Global) })
	reg.GaugeFunc("optsim.max_in_flight", func() float64 { return float64(e.stats.MaxInFlight) })
	reg.GaugeFunc("optsim.wasted_work_fraction", func() float64 { return e.stats.WastedFraction() })
	reg.GaugeFunc("optsim.rollback_ratio", func() float64 { return e.stats.RollbackRatio() })
	reg.GaugeFunc("optsim.gvt", func() float64 { return float64(e.now) })
	reg.GaugeFunc("optsim.gvt_lag", func() float64 { return float64(e.gvtLag()) })
	reg.GaugeFunc("optsim.max_gvt_lag", func() float64 { return float64(e.stats.MaxGVTLag) })
}

// gvtLag is how far the furthest in-flight speculation currently runs
// ahead of the commit frontier.
func (e *Engine) gvtLag() des.Time {
	var lag des.Time
	for _, le := range e.launchedOn {
		if le != nil && le.at-e.now > lag {
			lag = le.at - e.now
		}
	}
	return lag
}

// New returns an optimistic engine with the clock at zero.
func New(opts Options) *Engine {
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	shards := opts.Shards
	if shards < 1 {
		shards = 1
	}
	return &Engine{
		window:     opts.Window,
		workers:    w,
		launchedOn: make([]*event, shards),
		shardQ:     make([]lazyHeap, shards),
	}
}

// Now returns the current virtual time (the exact GVT).
func (e *Engine) Now() des.Time { return e.now }

// Pending returns the number of scheduled, uncancelled events.
func (e *Engine) Pending() int { return len(e.heap) }

// Executed counts events that have run.
func (e *Engine) Executed() uint64 { return e.executed }

// preSchedule is the straggler/anti-message detector, run before every
// event insertion: new work scheduled into the past of an in-flight
// speculation invalidates it. A same-timestamp arrival is not a straggler —
// the new event's larger sequence number orders it after the speculation.
func (e *Engine) preSchedule(shard int, t des.Time) {
	if shard < 0 {
		if e.inFlight > 0 {
			for s, le := range e.launchedOn {
				if le != nil && t < le.at {
					e.rollback(s)
				}
			}
		}
		return
	}
	if le := e.launchedOn[shard]; le != nil && t < le.at {
		e.rollback(shard)
	}
}

// schedule inserts a fully formed event into the global heap and, for
// shard events, the shard's minima heap.
func (e *Engine) schedule(ev *event) des.Handle {
	e.seq++
	heap.Push(&e.heap, ev)
	if ev.shard >= 0 {
		e.shardQ[ev.shard].push(ev)
	} else {
		e.globals.push(ev)
	}
	return des.HandleFor(ev)
}

// At schedules fn as a global event: it runs alone on the driver, with no
// phases in flight.
func (e *Engine) At(t des.Time, fn func()) des.Handle {
	if t < e.now {
		panic(fmt.Sprintf("optsim: scheduling event at %v before now %v", t, e.now))
	}
	e.preSchedule(-1, t)
	return e.schedule(&event{at: t, fn: fn, seq: e.seq, shard: -1})
}

func (e *Engine) checkShard(shard int) {
	if shard < 0 || shard >= len(e.launchedOn) {
		panic(fmt.Sprintf("optsim: shard %d out of range [0,%d)", shard, len(e.launchedOn)))
	}
}

// AtShard schedules a two-phase event on a shard.
func (e *Engine) AtShard(shard int, t des.Time, fn func() func()) des.Handle {
	if t < e.now {
		panic(fmt.Sprintf("optsim: scheduling event at %v before now %v", t, e.now))
	}
	e.checkShard(shard)
	e.preSchedule(shard, t)
	return e.schedule(&event{at: t, sfn: fn, seq: e.seq, shard: shard})
}

// AtShardFn schedules a two-phase event from a preallocated PhaseFn.
func (e *Engine) AtShardFn(shard int, t des.Time, fn des.PhaseFn, a any, b int64) des.Handle {
	if t < e.now {
		panic(fmt.Sprintf("optsim: scheduling event at %v before now %v", t, e.now))
	}
	e.checkShard(shard)
	e.preSchedule(shard, t)
	return e.schedule(&event{at: t, pfn: fn, a: a, b: b, seq: e.seq, shard: shard})
}

// AtShardCommit schedules a sharded event whose entire body runs at commit
// position on the driver. It participates in shard ordering (and straggler
// detection: an arrival in a speculation's past rolls the shard back) but
// is never handed to a worker.
func (e *Engine) AtShardCommit(shard int, t des.Time, fn des.CommitFn, a any, b int64) des.Handle {
	if t < e.now {
		panic(fmt.Sprintf("optsim: scheduling event at %v before now %v", t, e.now))
	}
	e.checkShard(shard)
	e.preSchedule(shard, t)
	return e.schedule(&event{at: t, cfn: fn, a: a, b: b, seq: e.seq, shard: shard})
}

// After schedules fn to run d seconds from now as a global event.
func (e *Engine) After(d des.Time, fn func()) des.Handle {
	if d < 0 {
		panic(fmt.Sprintf("optsim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Cancel removes a scheduled event. Cancelling an event whose phase is
// speculatively in flight rolls the speculation back first — unlike the
// conservative engine, a late cancellation is an ordinary straggler here,
// not a protocol violation.
func (e *Engine) Cancel(h des.Handle) {
	ref := h.EventRef()
	if ref == nil {
		return
	}
	ev, ok := ref.(*event)
	if !ok {
		panic("optsim: Cancel of a handle from a different engine")
	}
	if ev.launched {
		e.rollback(ev.shard)
	}
	if ev.pos < 0 {
		return
	}
	heap.Remove(&e.heap, ev.pos)
}

// Stop makes Run return before the next pop.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue drains or Stop is called. Before
// returning, every still-in-flight speculation is rolled back, so the
// machine state Run leaves behind is exactly the sequential engine's state
// at the same stop point — shard-local state included.
func (e *Engine) Run() {
	e.stopped = false
	defer e.shutdownPool()
	defer e.rollbackAll()
	for !e.stopped && len(e.heap) > 0 {
		e.step(des.Forever)
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock
// to t (if it is ahead of the last event). Like Run, it rolls back any
// remaining speculations before returning.
func (e *Engine) RunUntil(t des.Time) {
	e.stopped = false
	defer e.shutdownPool()
	defer e.rollbackAll()
	for !e.stopped && len(e.heap) > 0 && e.heap[0].at <= t {
		e.step(t)
	}
	if e.now < t {
		e.now = t
	}
}

// step launches eligible speculations, then pops and commits the next
// event in heap order. horizon (inclusive) bounds execution for RunUntil.
func (e *Engine) step(horizon des.Time) {
	e.launch(horizon)
	ev := heap.Pop(&e.heap).(*event)
	e.now = ev.at // the exact GVT: nothing at or below this can roll back
	e.executed++

	if ev.shard < 0 {
		// The launch rule never speculates past the earliest pending
		// global, and preSchedule rolls back speculations that a later-
		// scheduled global would precede — so a popping global always
		// finds zero phases in flight, exactly like parsim.
		if e.inFlight > 0 {
			e.drainLaunched()
			panic(fmt.Sprintf("optsim: internal: global event at t=%v popped with %d speculations in flight", ev.at, e.inFlight))
		}
		e.stats.Global++
		ev.fn()
		if e.probe != nil {
			e.probe.EventExecuted(ev.shard, ev.at, len(e.heap))
		}
		return
	}

	if e.sink != nil {
		e.sink.PhaseStart(ev.shard, ev.at)
	}
	var commit func()
	var stallNs int64
	speculated := ev.launched
	if speculated {
		if e.launchedOn[ev.shard] != ev {
			panic("optsim: internal: popped a launched event that is not its shard's in-flight speculation")
		}
		e.launchedOn[ev.shard] = nil
		e.inFlight--
		if e.probe != nil {
			t0 := e.probe.WallNow()
			<-ev.done
			stallNs = e.probe.WallNow() - t0
		} else {
			<-ev.done
		}
		if ev.panicked {
			// Re-raise deterministically in pop order, not worker order.
			// No PhaseDone: the sequential engine panics out of the phase
			// body before reaching its PhaseDone too.
			e.drainLaunched()
			panic(ev.pval)
		}
		e.stats.Committed++
		commit = ev.commit
	} else {
		if e.launchedOn[ev.shard] != nil {
			panic("optsim: internal: shard event popped past its in-flight speculation")
		}
		e.stats.Inline++
		switch {
		case ev.cfn != nil:
			ev.cfn(ev.a, ev.b, ev.at)
		case ev.pfn != nil:
			commit = ev.pfn(ev.a, ev.b, ev.at)
		default:
			commit = ev.sfn()
		}
	}
	if commit != nil {
		commit()
	}
	if speculated {
		// Fossil collection: the commit frontier passed this speculation,
		// so its snapshot can never be needed again.
		if e.ctrl != nil {
			e.ctrl.CommitSpec(ev.shard)
		}
		if e.ssink != nil {
			e.ssink.SpecCommit(ev.shard, ev.at)
		}
	}
	if e.sink != nil {
		e.sink.PhaseDone(ev.shard, ev.at)
	}
	if e.probe != nil {
		if speculated {
			e.probe.PhaseWall(ev.shard, ev.at, e.probe.WallNow()-ev.launchNs, stallNs, true)
		}
		e.probe.EventExecuted(ev.shard, ev.at, len(e.heap))
	}
}

// launch hands every eligible shard minimum to the worker pool: not a
// commit-only body, not the heap top (the driver runs that inline and
// overlaps with the launches), not at or past the earliest pending global,
// and within the optimism window when one is configured.
func (e *Engine) launch(horizon des.Time) {
	if e.ctrl == nil || len(e.launchedOn) < 2 || len(e.heap) < 2 {
		return
	}
	top := e.heap[0]
	limit := des.Forever
	if e.window > 0 {
		limit = top.at + e.window
	}
	minGlobal := e.globals.peek()
	for s := range e.shardQ {
		if e.launchedOn[s] != nil {
			continue
		}
		ev := e.shardQ[s].peek()
		if ev == nil || ev == top || ev.cfn != nil {
			continue
		}
		if ev.at >= limit || ev.at > horizon {
			continue
		}
		if minGlobal != nil && precedes(minGlobal, ev) {
			continue
		}
		e.launchEvent(ev)
	}
}

// launchEvent hands one event's phase to the worker pool as a speculation.
func (e *Engine) launchEvent(ev *event) {
	if e.jobs == nil {
		e.jobs = make(chan *event, len(e.launchedOn))
		for w := 0; w < e.workers; w++ {
			e.poolWG.Add(1)
			//charmvet:parsim (speculative phase workers execute shard-disjoint events; misspeculations are rolled back)
			go e.worker()
		}
	}
	e.ctrl.BeginSpec(ev.shard)
	ev.launched = true
	ev.done = make(chan struct{})
	e.launchedOn[ev.shard] = ev
	e.inFlight++
	if e.inFlight > e.stats.MaxInFlight {
		e.stats.MaxInFlight = e.inFlight
	}
	if lag := ev.at - e.now; lag > e.stats.MaxGVTLag {
		e.stats.MaxGVTLag = lag
	}
	e.stats.Launched++
	if e.ssink != nil {
		e.ssink.SpecLaunch(ev.shard, ev.at)
	}
	if e.probe != nil {
		ev.launchNs = e.probe.WallNow()
		e.probe.SpecLaunched(ev.shard, ev.at, ev.at-e.now)
	}
	e.jobs <- ev
}

// rollback undoes shard s's in-flight speculation: wait for the phase,
// discard its withheld commit (the speculative sends it buffered never
// entered the network — dropping the closure is the anti-message), and let
// the controller restore the shard-local state the phase mutated. The
// event itself stays scheduled and runs again at or before its pop.
func (e *Engine) rollback(s int) {
	ev := e.launchedOn[s]
	var waitNs int64
	if e.probe != nil {
		t0 := e.probe.WallNow()
		<-ev.done
		waitNs = e.probe.WallNow() - t0
	} else {
		<-ev.done
	}
	e.launchedOn[s] = nil
	e.inFlight--
	ev.launched = false
	ev.done = nil
	ev.commit = nil
	ev.pval, ev.panicked = nil, false
	e.ctrl.RollbackSpec(s)
	e.stats.RolledBack++
	if e.ssink != nil {
		e.ssink.SpecRollback(s, ev.at)
	}
	if e.probe != nil {
		e.probe.SpecRolledBack(s, ev.at, waitNs)
	}
}

// rollbackAll undoes every in-flight speculation (run exit, Stop).
func (e *Engine) rollbackAll() {
	for s, le := range e.launchedOn {
		if le != nil {
			e.rollback(s)
		}
	}
}

// worker drains the job channel, running one phase at a time.
func (e *Engine) worker() {
	defer e.poolWG.Done()
	for ev := range e.jobs {
		runPhase(ev)
	}
}

// runPhase executes one event's phase, capturing panics so the driver can
// re-raise them in deterministic pop order (or discard them on rollback —
// a straggler that would have prevented the panic sequentially prevents it
// here too, by rolling the panicked speculation back before its pop).
func runPhase(ev *event) {
	defer close(ev.done)
	defer func() {
		if r := recover(); r != nil {
			ev.pval, ev.panicked = r, true
		}
	}()
	if ev.pfn != nil {
		ev.commit = ev.pfn(ev.a, ev.b, ev.at)
		return
	}
	ev.commit = ev.sfn()
}

// drainLaunched waits for every in-flight phase (panic path only; normal
// exits roll them back instead).
func (e *Engine) drainLaunched() {
	for _, ev := range e.heap {
		if ev != nil && ev.launched {
			<-ev.done
		}
	}
}

// shutdownPool stops the workers after finishing all handed-out phases, so
// no goroutine outlives Run/RunUntil.
func (e *Engine) shutdownPool() {
	if e.jobs == nil {
		return
	}
	close(e.jobs)
	e.poolWG.Wait()
	e.jobs = nil
	e.drainLaunched()
}
