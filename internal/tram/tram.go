// Package tram implements the Topological Routing and Aggregation Module
// of §III-F: a library that improves fine-grained communication performance
// by coalescing small data items into larger messages.
//
// TRAM overlays a virtual N-dimensional grid on the PEs. The peers of a PE
// are the PEs reachable by changing a single grid coordinate, so buffer
// space is O(Σ dims) instead of O(P). An item whose destination is not a
// peer travels dimension by dimension along a minimal route, being
// re-aggregated at each intermediate hop. Per-message software overhead is
// paid once per aggregated message instead of once per item, at the cost of
// added latency when traffic is too sparse to fill buffers — exactly the
// trade Fig 15b shows.
package tram

import (
	"fmt"

	"charmgo/internal/charm"
	"charmgo/internal/des"
)

// Options configures a TRAM client.
type Options struct {
	// Dims is the virtual grid; the product must equal the runtime's
	// active PE count. Nil picks a near-square 2-D grid automatically.
	Dims []int
	// BufItems is the per-peer buffer capacity that triggers a flush
	// (the "aggregation threshold"); default 64.
	BufItems int
	// ItemBytes is the modeled wire size of one item; default 32.
	ItemBytes int
	// FlushTimeout flushes partly filled buffers after this much idle
	// virtual time; default 2 ms. Zero disables timed flushes.
	FlushTimeout des.Time
	// PerItemCost is the CPU cost of handling one item at each hop
	// (packing/unpacking), far below a full message overhead; default
	// 60 ns.
	PerItemCost float64
}

func (o Options) withDefaults(numPEs int) Options {
	if len(o.Dims) == 0 {
		o.Dims = AutoDims(numPEs, 2)
	}
	if o.BufItems == 0 {
		o.BufItems = 64
	}
	if o.ItemBytes == 0 {
		o.ItemBytes = 32
	}
	if o.FlushTimeout == 0 {
		o.FlushTimeout = 2e-3
	}
	if o.PerItemCost == 0 {
		o.PerItemCost = 60e-9
	}
	return o
}

// AutoDims factors numPEs into nd grid dimensions as evenly as possible.
// For prime or awkward counts it degrades toward fewer effective
// dimensions (worst case [P, 1, ...]), which is always correct.
func AutoDims(numPEs, nd int) []int {
	if nd < 1 {
		nd = 1
	}
	dims := make([]int, nd)
	for i := range dims {
		dims[i] = 1
	}
	rem := numPEs
	for d := 0; d < nd-1; d++ {
		// Largest divisor of rem not exceeding the balanced target.
		target := 1
		for target*target <= rem {
			target++
		}
		best := 1
		for f := 1; f <= target; f++ {
			if rem%f == 0 {
				best = f
			}
		}
		dims[d] = best
		rem /= best
	}
	dims[nd-1] = rem
	return dims
}

type item struct {
	destPE  int
	idx     charm.Index
	payload any
}

type batch struct {
	items []item
}

type peBuffers struct {
	// buf maps peer PE -> pending items; a slice keyed by peer ordinal.
	peerOf map[int]int
	peers  []int
	bufs   [][]item
	armed  []bool // timed flush scheduled for this peer

	// free recycles item slices on this PE: a received batch's backing
	// array, once drained, seeds the next outgoing buffer instead of being
	// garbage. Strictly PE-local (filled by this PE's batch deliveries,
	// drained by this PE's submissions), so it needs no synchronization on
	// the parallel backend.
	free [][]item
}

// Stats counts TRAM activity.
type Stats struct {
	ItemsSubmitted uint64
	ItemsDelivered uint64
	MsgsSent       uint64 // aggregated messages put on the wire
	TimedFlushes   uint64
	FullFlushes    uint64
}

// Client is one TRAM instance delivering items to entry method ep of arr.
type Client struct {
	rt   *charm.Runtime
	arr  *charm.Array
	ep   charm.EP
	opts Options
	peh  charm.PEH

	dims    []int
	strides []int
	pes     []*peBuffers

	Stats Stats
}

// New creates a TRAM client for the runtime's current active PE set.
func New(rt *charm.Runtime, arr *charm.Array, ep charm.EP, opts Options) *Client {
	o := opts.withDefaults(rt.NumPEs())
	prod := 1
	for _, d := range o.Dims {
		prod *= d
	}
	if prod != rt.NumPEs() {
		panic(fmt.Sprintf("tram: grid %v does not cover %d PEs", o.Dims, rt.NumPEs()))
	}
	c := &Client{rt: rt, arr: arr, ep: ep, opts: o, dims: o.Dims}
	c.strides = make([]int, len(o.Dims))
	s := 1
	for d := len(o.Dims) - 1; d >= 0; d-- {
		c.strides[d] = s
		s *= o.Dims[d]
	}
	c.pes = make([]*peBuffers, rt.NumPEs())
	for p := range c.pes {
		c.pes[p] = c.newPEBuffers(p)
	}
	c.peh = rt.DeclareNamedPEHandler("tram:"+arr.Name(), c.onBatch)
	reg := rt.Metrics()
	pre := "tram." + arr.Name() + "."
	reg.GaugeFunc(pre+"items_submitted", func() float64 { return float64(c.Stats.ItemsSubmitted) })
	reg.GaugeFunc(pre+"items_delivered", func() float64 { return float64(c.Stats.ItemsDelivered) })
	reg.GaugeFunc(pre+"msgs_sent", func() float64 { return float64(c.Stats.MsgsSent) })
	reg.GaugeFunc(pre+"timed_flushes", func() float64 { return float64(c.Stats.TimedFlushes) })
	reg.GaugeFunc(pre+"full_flushes", func() float64 { return float64(c.Stats.FullFlushes) })
	return c
}

func (c *Client) coord(pe, dim int) int { return pe / c.strides[dim] % c.dims[dim] }

// nextHop routes dimension by dimension: correct the first mismatched
// coordinate.
func (c *Client) nextHop(from, dest int) int {
	for d := range c.dims {
		cf, cd := c.coord(from, d), c.coord(dest, d)
		if cf != cd {
			return from + (cd-cf)*c.strides[d]
		}
	}
	return from
}

// Peers returns the peer set of a PE (one per reachable single-dimension
// move) — O(Σ(dims-1)) rather than O(P).
func (c *Client) Peers(pe int) []int {
	return append([]int(nil), c.pes[pe].peers...)
}

func (c *Client) newPEBuffers(pe int) *peBuffers {
	b := &peBuffers{peerOf: map[int]int{}}
	for d := range c.dims {
		for v := 0; v < c.dims[d]; v++ {
			peer := pe + (v-c.coord(pe, d))*c.strides[d]
			if peer == pe {
				continue
			}
			if _, dup := b.peerOf[peer]; dup {
				continue
			}
			b.peerOf[peer] = len(b.peers)
			b.peers = append(b.peers, peer)
		}
	}
	b.bufs = make([][]item, len(b.peers))
	b.armed = make([]bool, len(b.peers))
	return b
}

// Submit hands one fine-grained item to TRAM from within an entry method
// or PE handler executing on ctx's PE. The item is counted as in-flight
// application work until final delivery, so quiescence detection covers
// TRAM traffic.
func (c *Client) Submit(ctx *charm.Ctx, idx charm.Index, payload any) {
	// Stats and the quiescence counter are global state: deferred so the
	// parallel backend can run submitting handlers concurrently.
	ctx.Defer(func() {
		c.Stats.ItemsSubmitted++
		c.rt.IncInflight(1)
	})
	dest := c.rt.ProbablePE(c.arr, idx, ctx.MyPE())
	it := item{destPE: dest, idx: idx, payload: payload}
	c.route(ctx, it)
}

func (c *Client) route(ctx *charm.Ctx, it item) {
	ctx.Charge(c.opts.PerItemCost)
	me := ctx.MyPE()
	if it.destPE == me {
		c.deliver(ctx, it)
		return
	}
	hop := c.nextHop(me, it.destPE)
	pb := c.pes[me]
	pi, ok := pb.peerOf[hop]
	if !ok {
		// Shrunken PE set or irregular grid: send directly.
		c.sendBatch(ctx, hop, []item{it}, false)
		return
	}
	if pb.bufs[pi] == nil {
		if n := len(pb.free); n > 0 {
			pb.bufs[pi] = pb.free[n-1]
			pb.free = pb.free[:n-1]
		}
	}
	pb.bufs[pi] = append(pb.bufs[pi], it)
	if h := c.rt.Trace(); h != nil {
		// Capture the virtual time before deferring: elapsed keeps
		// advancing during the handler, and the hook must see the same
		// timestamp on both backends.
		at, depth := ctx.Now(), len(pb.bufs[pi])
		ctx.Defer(func() { h.TramBuffer(at, me, depth) })
	}
	if len(pb.bufs[pi]) >= c.opts.BufItems {
		ctx.Defer(func() { c.Stats.FullFlushes++ })
		c.flushPeer(ctx, me, pi, false)
		return
	}
	if c.opts.FlushTimeout > 0 && !pb.armed[pi] {
		pb.armed[pi] = true
		// Arming the timer schedules an engine event — a global effect.
		// The timer body itself runs as a PE-handler message, where the
		// context is always in immediate mode.
		ctx.Defer(func() {
			c.rt.ExecuteOnPE(me, c.opts.FlushTimeout, func(ctx *charm.Ctx) {
				pb.armed[pi] = false
				if len(pb.bufs[pi]) > 0 {
					c.Stats.TimedFlushes++
					c.flushPeer(ctx, me, pi, true)
				}
			})
		})
	}
}

func (c *Client) flushPeer(ctx *charm.Ctx, pe, pi int, timed bool) {
	pb := c.pes[pe]
	items := pb.bufs[pi]
	pb.bufs[pi] = nil
	c.sendBatch(ctx, pb.peers[pi], items, timed)
}

func (c *Client) sendBatch(ctx *charm.Ctx, to int, items []item, timed bool) {
	ctx.Defer(func() { c.Stats.MsgsSent++ })
	if h := c.rt.Trace(); h != nil {
		at, n, pe := ctx.Now(), len(items), ctx.MyPE()
		ctx.Defer(func() { h.TramFlush(at, pe, n, timed) })
	}
	size := 48 + len(items)*c.opts.ItemBytes
	ctx.SendPE(to, c.peh, batch{items: items}, &charm.SendOpts{Bytes: size})
}

// FlushAll flushes every buffer on ctx's PE (end-of-phase drain).
func (c *Client) FlushAll(ctx *charm.Ctx) {
	me := ctx.MyPE()
	pb := c.pes[me]
	for pi := range pb.bufs {
		if len(pb.bufs[pi]) > 0 {
			c.flushPeer(ctx, me, pi, false)
		}
	}
}

// onBatch receives an aggregated message: deliver local items, re-buffer
// the rest toward their next dimension. The received slice is dead after
// the loop (items are copied out by value), so full-size backing arrays are
// recycled into this PE's free list; undersized ones (timed or direct-send
// batches) are left for the collector.
func (c *Client) onBatch(ctx *charm.Ctx, msg any) {
	b := msg.(batch)
	for _, it := range b.items {
		c.route(ctx, it)
	}
	if cap(b.items) >= c.opts.BufItems {
		clear(b.items) // drop payload references before pooling
		c.pes[ctx.MyPE()].free = append(c.pes[ctx.MyPE()].free, b.items[:0])
	}
}

// deliver invokes the destination entry method inline; if the element
// moved since routing began, fall back to a regular point-to-point send.
func (c *Client) deliver(ctx *charm.Ctx, it item) {
	ctx.Charge(c.opts.PerItemCost)
	if c.arr.PEOf(it.idx) == ctx.MyPE() {
		ctx.LocalInvoke(c.arr, it.idx, c.ep, it.payload)
		ctx.Defer(func() {
			c.Stats.ItemsDelivered++
			c.rt.DecInflight(1)
		})
		return
	}
	ctx.Defer(func() { c.rt.DecInflight(1) }) // regular path re-counts
	ctx.Send(c.arr, it.idx, c.ep, it.payload)
}
