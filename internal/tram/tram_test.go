package tram

import (
	"testing"
	"testing/quick"

	"charmgo/internal/charm"
	"charmgo/internal/machine"
	"charmgo/internal/pup"
)

type sink struct {
	Got []int64
}

func (s *sink) Pup(p *pup.Pup) { pup.Slice(p, &s.Got, (*pup.Pup).Int64) }

func setup(numPEs, numElems int, opts Options) (*charm.Runtime, *charm.Array, *Client) {
	rt := charm.New(machine.New(machine.Testbed(numPEs)))
	handlers := []charm.Handler{
		func(obj charm.Chare, ctx *charm.Ctx, msg any) {
			s := obj.(*sink)
			s.Got = append(s.Got, msg.(int64))
			ctx.Charge(1e-7)
		},
	}
	arr := rt.DeclareArray("sinks", func() charm.Chare { return &sink{} }, handlers, charm.ArrayOpts{})
	for i := 0; i < numElems; i++ {
		arr.Insert(charm.Idx1(i), &sink{})
	}
	c := New(rt, arr, 0, opts)
	return rt, arr, c
}

func TestAutoDims(t *testing.T) {
	cases := map[int][]int{
		16: {4, 4},
		12: {4, 3},
		7:  {1, 7}, // prime degrades to 1D
		64: {8, 8},
	}
	for n, want := range cases {
		got := AutoDims(n, 2)
		if got[0]*got[1] != n {
			t.Fatalf("AutoDims(%d) = %v does not cover", n, got)
		}
		if got[0] != want[0] || got[1] != want[1] {
			t.Fatalf("AutoDims(%d) = %v, want %v", n, got, want)
		}
	}
	d3 := AutoDims(64, 3)
	if d3[0]*d3[1]*d3[2] != 64 {
		t.Fatalf("AutoDims(64,3) = %v", d3)
	}
}

func TestPeersAreSingleDimension(t *testing.T) {
	_, _, c := setup(16, 16, Options{Dims: []int{4, 4}})
	peers := c.Peers(5)
	if len(peers) != 6 { // 3 along each of 2 dims
		t.Fatalf("PE 5 has %d peers, want 6: %v", len(peers), peers)
	}
	for _, p := range peers {
		diff := 0
		for d := 0; d < 2; d++ {
			if c.coord(5, d) != c.coord(p, d) {
				diff++
			}
		}
		if diff != 1 {
			t.Fatalf("peer %d differs in %d dims", p, diff)
		}
	}
}

func TestNextHopConverges(t *testing.T) {
	_, _, c := setup(16, 16, Options{Dims: []int{4, 4}})
	f := func(from, to uint8) bool {
		a, b := int(from)%16, int(to)%16
		steps := 0
		for a != b {
			a = c.nextHop(a, b)
			steps++
			if steps > 8 {
				return false
			}
		}
		return steps <= 2 // at most one hop per dimension
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestExactlyOnceDelivery(t *testing.T) {
	rt, arr, c := setup(16, 64, Options{BufItems: 8})
	const perElem = 5
	rt.Boot(func(ctx *charm.Ctx) {
		for e := 0; e < 64; e++ {
			for k := 0; k < perElem; k++ {
				c.Submit(ctx, charm.Idx1(e), int64(e*1000+k))
			}
		}
	})
	done := false
	rt.StartQD(charm.CallbackFunc(0, func(ctx *charm.Ctx, _ any) { done = true }))
	rt.Run()
	if !done {
		t.Fatal("QD never fired — TRAM items leaked from the in-flight count")
	}
	total := 0
	for e := 0; e < 64; e++ {
		s := arr.Get(charm.Idx1(e)).(*sink)
		if len(s.Got) != perElem {
			t.Fatalf("element %d received %d items, want %d", e, len(s.Got), perElem)
		}
		seen := map[int64]bool{}
		for _, v := range s.Got {
			if v/1000 != int64(e) {
				t.Fatalf("element %d received foreign item %d", e, v)
			}
			if seen[v] {
				t.Fatalf("duplicate item %d", v)
			}
			seen[v] = true
		}
		total += len(s.Got)
	}
	if uint64(total) != c.Stats.ItemsDelivered {
		t.Fatalf("delivered stat %d != %d", c.Stats.ItemsDelivered, total)
	}
}

func TestAggregationReducesMessages(t *testing.T) {
	// High-volume all-to-all: aggregated message count must be far below
	// the item count.
	rt, _, c := setup(16, 64, Options{BufItems: 32, FlushTimeout: 1e-3})
	const items = 6400
	rt.Boot(func(ctx *charm.Ctx) {
		for k := 0; k < items; k++ {
			c.Submit(ctx, charm.Idx1(k%64), int64(k))
		}
	})
	rt.Run()
	if c.Stats.ItemsSubmitted != items {
		t.Fatalf("submitted %d", c.Stats.ItemsSubmitted)
	}
	if c.Stats.MsgsSent >= items/4 {
		t.Fatalf("TRAM sent %d messages for %d items — no aggregation", c.Stats.MsgsSent, items)
	}
}

func TestTimedFlushDrainsSparseTraffic(t *testing.T) {
	// A single item must still arrive, via the flush timer.
	rt, arr, c := setup(16, 16, Options{BufItems: 1000, FlushTimeout: 1e-3})
	rt.Boot(func(ctx *charm.Ctx) {
		c.Submit(ctx, charm.Idx1(13), int64(99))
	})
	rt.Run()
	var got []int64
	for e := 0; e < 16; e++ {
		got = append(got, arr.Get(charm.Idx1(e)).(*sink).Got...)
	}
	if len(got) != 1 || got[0] != 99 {
		t.Fatalf("sparse item lost: %v", got)
	}
	if c.Stats.TimedFlushes == 0 {
		t.Fatal("delivery should have used the flush timer")
	}
}

func TestLatencyTradeoff(t *testing.T) {
	// Sparse traffic: TRAM (big buffers, timer flush) must be slower than
	// direct sends. Dense traffic: TRAM must win. This is Fig 15b's
	// crossover in miniature.
	run := func(items int, useTram bool) float64 {
		rt := charm.New(machine.New(machine.Testbed(16)))
		handlers := []charm.Handler{
			func(obj charm.Chare, ctx *charm.Ctx, msg any) { ctx.Charge(1e-7) },
		}
		arr := rt.DeclareArray("s", func() charm.Chare { return &sink{} }, handlers, charm.ArrayOpts{})
		for i := 0; i < 64; i++ {
			arr.Insert(charm.Idx1(i), &sink{})
		}
		var c *Client
		if useTram {
			c = New(rt, arr, 0, Options{BufItems: 64, FlushTimeout: 5e-4})
		}
		rt.Boot(func(ctx *charm.Ctx) {
			for k := 0; k < items; k++ {
				if useTram {
					c.Submit(ctx, charm.Idx1(k%64), int64(k))
				} else {
					ctx.SendOpt(arr, charm.Idx1(k%64), 0, int64(k), &charm.SendOpts{Bytes: 32})
				}
			}
		})
		return float64(rt.Run())
	}
	sparseTram, sparseDirect := run(32, true), run(32, false)
	denseTram, denseDirect := run(20000, true), run(20000, false)
	if sparseTram <= sparseDirect {
		t.Fatalf("sparse: TRAM %.6f should lose to direct %.6f", sparseTram, sparseDirect)
	}
	if denseTram >= denseDirect {
		t.Fatalf("dense: TRAM %.6f should beat direct %.6f", denseTram, denseDirect)
	}
}

func TestGridMismatchPanics(t *testing.T) {
	rt := charm.New(machine.New(machine.Testbed(8)))
	arr := rt.DeclareArray("s", func() charm.Chare { return &sink{} }, []charm.Handler{}, charm.ArrayOpts{})
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched grid should panic")
		}
	}()
	New(rt, arr, 0, Options{Dims: []int{3, 3}})
}

func TestThreeDimensionalGrid(t *testing.T) {
	rt, arr, c := setup(27, 27, Options{Dims: []int{3, 3, 3}, BufItems: 4})
	rt.Boot(func(ctx *charm.Ctx) {
		for k := 0; k < 270; k++ {
			c.Submit(ctx, charm.Idx1(k%27), int64(k))
		}
	})
	rt.Run()
	total := 0
	for e := 0; e < 27; e++ {
		total += len(arr.Get(charm.Idx1(e)).(*sink).Got)
	}
	if total != 270 {
		t.Fatalf("3-D grid delivered %d of 270 items", total)
	}
	// Peers in 3D: 2 along each of 3 dims = 6.
	if got := len(c.Peers(13)); got != 6 {
		t.Fatalf("centre PE has %d peers, want 6", got)
	}
}
