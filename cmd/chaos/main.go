// chaos runs deterministic fault-injection campaigns: for each app it
// probes a failure-free run, derives a seeded crash plan spread over the
// mid-run, and re-executes under injected crashes on all three backends
// (sequential, conservative-parallel, optimistic),
// asserting that the surviving run's final application results and full
// state digest are byte-identical to the failure-free run's. The report
// (BENCH_chaos.json) carries detection latency, recovery time, and the
// modeled buddy-restore cost set against restarting from scratch.
//
// The same -seed and -crashes always produce the same plan, the same
// virtual-time fault schedule, and a byte-identical report — determinism
// of the injector itself is part of the contract (and is what makes a
// failing campaign replayable).
//
// With -warns the plan also carries predicted failures (the fault-
// prediction scenario: the controller evacuates the doomed PE before the
// crash lands, absorbing it with zero rollback), and -R sets the
// checkpoint replication degree — at R>=2 a crash may take a replica
// holder down with it mid-recovery and the run must still converge.
//
// -ft runs the fault-tolerance benchmark instead: a replication-degree
// sweep plus an evacuation-vs-rollback cost comparison per app, written
// as BENCH_ft.json.
//
// Usage:
//
//	go run ./cmd/chaos -out BENCH_chaos.json          # all apps, 3 crashes
//	go run ./cmd/chaos -app stencil -crashes 5
//	go run ./cmd/chaos -app pdes -crashes 2 -warns 1 -R 2
//	go run ./cmd/chaos -ft -out BENCH_ft.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"charmgo/internal/chaos"
)

func main() {
	app := flag.String("app", "all", "campaign app: leanmd, stencil, pdes, or all")
	crashes := flag.Int("crashes", 3, "number of PE crashes to inject per run")
	warns := flag.Int("warns", 0, "number of predicted failures (warn faults) to inject per run")
	degree := flag.Int("R", 0, "checkpoint replication degree (0 = layer default of 1)")
	ft := flag.Bool("ft", false, "run the fault-tolerance benchmark (replication sweep + evacuation vs rollback) instead of a single campaign")
	seed := flag.Int64("seed", 42, "plan seed: same seed, same faults, same report")
	out := flag.String("out", "", "write the JSON report to this file (default: stdout only)")
	flag.Parse()

	if *ft {
		runFT(*seed, *out)
		return
	}

	apps := chaos.Apps()
	if *app != "all" {
		apps = []string{*app}
	}
	var report []*chaos.Bench
	failed := false
	for _, a := range apps {
		b, err := chaos.RunCampaignOpts(a, *crashes, *warns, *seed, *degree)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chaos: %s campaign: %v\n", a, err)
			os.Exit(1)
		}
		report = append(report, b)
		for _, r := range b.Results {
			status := "ok"
			if !r.ValuesMatch || !r.DigestMatch || r.Survived != *crashes+*warns {
				status = "FAIL"
				failed = true
			}
			fmt.Printf("%-8s %-10s survived %d/%d (absorbed %d)  values_match=%-5v digest_match=%-5v  det %.0fµs  rec %.0fµs  restore %.0fµs vs scratch %.0fµs  [%s]\n",
				a, r.Backend, r.Survived, *crashes+*warns, r.Absorbed, r.ValuesMatch, r.DigestMatch,
				r.MeanDetectionLatency*1e6, r.MeanRecoveryTime*1e6,
				r.TotalRestartCost*1e6, r.RestartFromScratch*1e6, status)
		}
		if !b.CrossBackendMatch {
			fmt.Printf("%-8s cross-backend digests DIVERGE\n", a)
			failed = true
		}
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "chaos:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *out)
	} else {
		os.Stdout.Write(data)
	}
	if failed {
		os.Exit(1)
	}
}

// runFT runs the replication sweep and writes/prints BENCH_ft.json.
func runFT(seed int64, out string) {
	rep, err := chaos.RunFTBench(seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos -ft:", err)
		os.Exit(1)
	}
	failed := false
	for _, a := range rep.Apps {
		for _, p := range a.Points {
			status := "ok"
			if !p.DigestsIdentical {
				status = "FAIL"
				failed = true
			}
			fmt.Printf("%-8s R=%d  elapsed %.0fµs (clean %.0fµs, overhead %.1f%%)  det %.0fµs  rec %.0fµs  fallbacks %d  digests_identical=%-5v [%s]\n",
				a.App, p.Replication, p.ChaosElapsed*1e6, a.CleanElapsed*1e6,
				p.CheckpointOverhead*100, p.MeanDetectionLatency*1e6,
				p.MeanRecoveryTime*1e6, p.Fallbacks, p.DigestsIdentical, status)
		}
		fmt.Printf("%-8s evacuation (R=%d): absorbed %d/%d predicted, evac cost %.0fµs vs rollback %.0fµs\n",
			a.App, a.BaselineR, a.Absorbed, a.Warns, a.EvacCost*1e6, a.RollbackCost*1e6)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos -ft:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if out != "" {
		if err := os.WriteFile(out, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "chaos -ft:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", out)
	} else {
		os.Stdout.Write(data)
	}
	if failed {
		os.Exit(1)
	}
}
