// chaos runs deterministic fault-injection campaigns: for each app it
// probes a failure-free run, derives a seeded crash plan spread over the
// mid-run, and re-executes under injected crashes on all three backends
// (sequential, conservative-parallel, optimistic),
// asserting that the surviving run's final application results and full
// state digest are byte-identical to the failure-free run's. The report
// (BENCH_chaos.json) carries detection latency, recovery time, and the
// modeled buddy-restore cost set against restarting from scratch.
//
// The same -seed and -crashes always produce the same plan, the same
// virtual-time fault schedule, and a byte-identical report — determinism
// of the injector itself is part of the contract (and is what makes a
// failing campaign replayable).
//
// Usage:
//
//	go run ./cmd/chaos -out BENCH_chaos.json          # all apps, 3 crashes
//	go run ./cmd/chaos -app stencil -crashes 5
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"charmgo/internal/chaos"
)

func main() {
	app := flag.String("app", "all", "campaign app: leanmd, stencil, pdes, or all")
	crashes := flag.Int("crashes", 3, "number of PE crashes to inject per run")
	seed := flag.Int64("seed", 42, "plan seed: same seed, same faults, same report")
	out := flag.String("out", "", "write the JSON report to this file (default: stdout only)")
	flag.Parse()

	apps := chaos.Apps()
	if *app != "all" {
		apps = []string{*app}
	}
	var report []*chaos.Bench
	failed := false
	for _, a := range apps {
		b, err := chaos.RunCampaign(a, *crashes, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chaos: %s campaign: %v\n", a, err)
			os.Exit(1)
		}
		report = append(report, b)
		for _, r := range b.Results {
			status := "ok"
			if !r.ValuesMatch || !r.DigestMatch || r.Survived != *crashes {
				status = "FAIL"
				failed = true
			}
			fmt.Printf("%-8s %-10s survived %d/%d  values_match=%-5v digest_match=%-5v  det %.0fµs  rec %.0fµs  restore %.0fµs vs scratch %.0fµs  [%s]\n",
				a, r.Backend, r.Survived, *crashes, r.ValuesMatch, r.DigestMatch,
				r.MeanDetectionLatency*1e6, r.MeanRecoveryTime*1e6,
				r.TotalRestartCost*1e6, r.RestartFromScratch*1e6, status)
		}
		if !b.CrossBackendMatch {
			fmt.Printf("%-8s cross-backend digests DIVERGE\n", a)
			failed = true
		}
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "chaos:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *out)
	} else {
		os.Stdout.Write(data)
	}
	if failed {
		os.Exit(1)
	}
}
