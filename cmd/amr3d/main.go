// Command amr3d runs the AMR3D adaptive-mesh advection mini-app: an
// oct-tree of blocks refining around a moving pulse, with optional
// distributed load balancing and checkpointing.
package main

import (
	"flag"
	"fmt"
	"os"

	"charmgo/internal/charm"
	"charmgo/internal/ckpt"
	"charmgo/internal/lb"
	"charmgo/internal/machine"

	"charmgo/internal/apps/amr"
)

func main() {
	pes := flag.Int("pes", 64, "processing elements")
	minD := flag.Int("min-depth", 2, "minimum oct-tree depth")
	maxD := flag.Int("max-depth", 5, "maximum oct-tree depth")
	startD := flag.Int("start-depth", 3, "initial uniform depth")
	blockSize := flag.Int("block", 8, "cells per block edge")
	steps := flag.Int("steps", 24, "advection steps")
	remesh := flag.Int("remesh", 4, "remesh period (0 = static mesh)")
	balance := flag.Bool("lb", true, "distributed load balancing after each remesh")
	ckptPath := flag.String("ckpt", "", "write a disk checkpoint here at the end")
	restart := flag.String("restart", "", "+restart: resume from this checkpoint file")
	flag.Parse()

	rt := charm.New(machine.New(machine.Vesta(*pes)))
	if *balance {
		rt.SetBalancer(lb.Distributed{Seed: 2})
	}
	cfg := amr.Config{
		MinDepth: *minD, MaxDepth: *maxD, StartDepth: *startD,
		BlockSize: *blockSize, Steps: *steps, RemeshPeriod: *remesh,
		Rebalance: *balance,
	}
	var app *amr.App
	var err error
	if *restart != "" {
		snap, lerr := ckpt.Load(*restart)
		if lerr != nil {
			fmt.Fprintln(os.Stderr, lerr)
			os.Exit(1)
		}
		app, err = amr.RestoreInto(rt, cfg, snap)
		if err == nil {
			fmt.Printf("restarted %d blocks from %s (originally %d PEs) on %d PEs\n",
				app.Blocks().Len(), *restart, snap.NumPEs, rt.NumPEs())
		}
	} else {
		app, err = amr.New(rt, cfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	res, err := app.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ts := res.StepTimes()
	for i := range ts {
		fmt.Printf("step %3d  %.5f s  blocks %5d  mass %.6f\n", i, ts[i], res.Blocks[i], res.Mass[i])
	}
	fmt.Printf("remeshes: %d; migrations: %d; total virtual time %.4f s\n",
		res.Remeshes, rt.Stats.Migrations, float64(res.Elapsed))

	if *ckptPath != "" {
		snap := ckpt.Capture(rt)
		if err := snap.Save(*ckptPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		tm := ckpt.DefaultModel(rt.NumPEs())
		fmt.Printf("checkpoint: %d bytes to %s (modeled %.1f ms on %d PEs)\n",
			snap.TotalBytes(), *ckptPath,
			float64(ckpt.DiskCheckpointTime(snap, rt.NumPEs(), tm))*1e3, rt.NumPEs())
	}
}
