// Command figures regenerates the data series behind every figure in the
// paper's evaluation section (Figs 4–17) on the virtual machine.
//
// Usage:
//
//	figures            # run every figure
//	figures -fig 9     # run one figure
//	figures -list      # list figure ids and titles
//	figures -workers 8 # run up to 8 sweep points per figure concurrently
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"charmgo/internal/figures"
)

func main() {
	figID := flag.String("fig", "", "run only the figure with this id (e.g. 9, 8L, 15b)")
	list := flag.Bool("list", false, "list available figures")
	backend := flag.String("backend", "sequential", "engine backend: sequential, parallel")
	workers := flag.Int("workers", 1, "concurrent sweep points per figure (0 = GOMAXPROCS); output is identical at any value")
	flag.Parse()

	if *backend != "sequential" && *backend != "parallel" {
		fmt.Fprintf(os.Stderr, "unknown backend %q (want sequential or parallel)\n", *backend)
		os.Exit(2)
	}
	if *workers == 0 {
		*workers = runtime.GOMAXPROCS(0)
	}
	figures.SetWorkers(*workers)

	if *list {
		for _, f := range figures.All() {
			fmt.Printf("%-4s %s\n", f.ID, f.Title)
		}
		return
	}

	// A failing figure (or a failing sweep point within one) is reported
	// with its label and the run continues, so one broken configuration
	// does not hide the state of every later figure.
	failed := 0
	run := func(f figures.Fig) {
		be := *backend
		if f.SeqOnly && be == "parallel" {
			fmt.Printf("(figure %s drives AMPI rank threads; running on the sequential engine)\n", f.ID)
			be = "sequential"
		}
		figures.SetBackend(be)
		fmt.Printf("== Figure %s: %s ==\n", f.ID, f.Title)
		start := time.Now()
		if err := f.Run(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "figure %s failed: %v\n", f.ID, err)
			failed++
			return
		}
		fmt.Printf("-- figure %s done in %.1fs (wall)\n\n", f.ID, time.Since(start).Seconds())
	}

	if *figID != "" {
		f, ok := figures.ByID(*figID)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown figure %q; use -list\n", *figID)
			os.Exit(2)
		}
		run(f)
	} else {
		for _, f := range figures.All() {
			run(f)
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d figure(s) failed\n", failed)
		os.Exit(1)
	}
}
