// Command ccsjob runs a continuously iterating job that external clients
// steer over the CCS TCP interface — the §III-D deployment: a scheduler
// (or a human) shrinks, expands, checkpoints, and inspects the job while
// it runs.
//
// Server:  ccsjob -listen 127.0.0.1:7777
// Client:  ccsjob -connect 127.0.0.1:7777 -cmd shrink -args 32
//
// Handlers: pes, shrink <n>, expand <n>, stats, timeline, trace [query],
// ckpt <path>,
// stop.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"charmgo/internal/ccs"
	"charmgo/internal/charm"
	"charmgo/internal/ckpt"
	"charmgo/internal/lb"
	"charmgo/internal/machine"
	"charmgo/internal/malleable"
	"charmgo/internal/projections"
	"charmgo/internal/pup"
	"charmgo/internal/telemetry"
	"charmgo/internal/trace"
)

// worker is a self-perpetuating compute chare: the job iterates until told
// to stop, like a long-running simulation awaiting scheduler commands.
type worker struct {
	Iters int64
	Work  float64
}

func (w *worker) Pup(p *pup.Pup) {
	p.Int64(&w.Iters)
	p.Float64(&w.Work)
}

func main() {
	listen := flag.String("listen", "", "serve a steerable job on this address")
	connect := flag.String("connect", "", "send one command to a running job")
	cmd := flag.String("cmd", "stats", "client command")
	args := flag.String("args", "", "client command arguments")
	pes := flag.Int("pes", 64, "server: processing elements")
	objs := flag.Int("objs", 256, "server: worker chares")
	telemetryAddr := flag.String("telemetry", "", "server: serve live introspection (/status, /metrics, /events, pprof) on this address")
	flag.Parse()

	switch {
	case *connect != "":
		client(*connect, *cmd, *args)
	case *listen != "":
		serve(*listen, *pes, *objs, *telemetryAddr)
	default:
		fmt.Fprintln(os.Stderr, "need -listen or -connect; see -help")
		os.Exit(2)
	}
}

func client(addr, cmd, args string) {
	c, err := ccs.Dial(addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer c.Close()
	result, err := c.Call(cmd, args)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	fmt.Println(result)
}

func serve(addr string, pes, objs int, telemetryAddr string) {
	rt := charm.New(machine.New(machine.Stampede(pes)))
	rt.SetBalancer(lb.Greedy{})
	var tel *telemetry.Telemetry
	if telemetryAddr != "" {
		tel = telemetry.Attach(rt, telemetry.Options{})
		defer tel.DumpOnPanic()
		tsrv, err := telemetry.Serve(telemetryAddr, tel)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer tsrv.Close()
		fmt.Printf("telemetry: http://%s\n", tsrv.Addr())
	}
	tr := trace.New(rt, 0.05)
	tr.Start()
	events := projections.Attach(rt, projections.Options{})

	var arr *charm.Array
	stopped := false
	handlers := []charm.Handler{
		func(obj charm.Chare, ctx *charm.Ctx, msg any) {
			w := obj.(*worker)
			w.Iters++
			ctx.Charge(w.Work)
			if !stopped {
				ctx.Send(arr, ctx.Index(), 0, nil)
			}
		},
	}
	arr = rt.DeclareArray("workers", func() charm.Chare { return &worker{} },
		handlers, charm.ArrayOpts{Migratable: true})
	for i := 0; i < objs; i++ {
		arr.Insert(charm.Idx1(i), &worker{Work: 2e-4})
	}
	arr.Broadcast(0, nil)

	mgr := malleable.NewManager(rt)
	srv := ccs.NewServer(rt)
	reconfig := func(args string) (string, error) {
		n, err := strconv.Atoi(args)
		if err != nil {
			return "", err
		}
		if err := mgr.Reconfigure(n); err != nil {
			return "", err
		}
		rt.Rebalance()
		return fmt.Sprintf("job now on %d PEs at t=%.2fs (virtual)", rt.NumPEs(), float64(rt.Now())), nil
	}
	srv.Register("shrink", reconfig)
	srv.Register("expand", reconfig)
	srv.Register("pes", func(string) (string, error) {
		return strconv.Itoa(rt.NumPEs()), nil
	})
	srv.Register("stats", func(string) (string, error) {
		var iters int64
		for _, idx := range arr.Keys() {
			iters += arr.Get(idx).(*worker).Iters
		}
		return fmt.Sprintf("t=%.2fs(virtual) PEs=%d chares=%d iters=%d msgs=%d migrations=%d",
			float64(rt.Now()), rt.NumPEs(), arr.Len(), iters,
			rt.Stats.MsgsDelivered, rt.Stats.Migrations), nil
	})
	srv.Register("timeline", func(string) (string, error) {
		return tr.Timeline(16), nil
	})
	projections.InstallCCS(srv, events)
	srv.Register("ckpt", func(path string) (string, error) {
		if path == "" {
			return "", fmt.Errorf("ckpt needs a file path argument")
		}
		snap := ckpt.Capture(rt)
		if err := snap.Save(path); err != nil {
			return "", err
		}
		return fmt.Sprintf("checkpointed %d bytes to %s", snap.TotalBytes(), path), nil
	})
	srv.Register("stop", func(string) (string, error) {
		stopped = true
		tr.Stop() // let the engine drain completely
		return "stopping after the current iterations drain", nil
	})

	bound, err := srv.Listen(addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer srv.Close()
	fmt.Printf("steerable job on %s (%d PEs, %d chares); commands: pes shrink expand stats timeline trace ckpt stop\n",
		bound, rt.NumPEs(), arr.Len())
	srv.Drive(0.05, func() bool { return stopped && rt.Engine().Pending() == 0 })
	if tel != nil {
		tel.Final()
	}
	fmt.Printf("job stopped at t=%.2fs (virtual)\n", float64(rt.Now()))
}
