// Command ckptinfo inspects a checkpoint file written by the disk
// checkpoint layer (Snapshot.Save / cmd/amr3d -ckpt / ccsjob's ckpt
// handler): the job-level metadata, per-array element counts and sizes,
// and optionally the per-PE data distribution at capture time.
//
// With -buddies it prints the in-memory scheme's replica map at degree -R
// (default 1, the classic buddy ring) — each PE's holder set, the bytes it
// keeps resident for others, and the bytes streamed back if it fails —
// plus a degree-sweep table of the R-vs-memory tradeoff; with
// -plan <file> it reads a chaos fault plan (the "plan" object of
// BENCH_chaos.json, or a hand-written one) and prints the blast radius of
// every planned crash — which PE dies, who can restore it, how many of its
// holders are themselves under fire elsewhere in the plan, and how many
// checkpoint bytes that restore streams — so an operator can judge a
// campaign (and pick a replication degree) before running it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"charmgo/internal/chaos"
	"charmgo/internal/ckpt"
)

func main() {
	perPE := flag.Bool("pe", false, "show the per-PE byte distribution")
	buddies := flag.Bool("buddies", false, "show the in-memory checkpoint replica map and restore volumes")
	degree := flag.Int("R", 1, "replication degree for -buddies and -plan views")
	planFile := flag.String("plan", "", "chaos plan JSON: show each planned crash's blast radius")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ckptinfo [-pe] [-buddies] [-R degree] [-plan plan.json] <checkpoint-file>")
		os.Exit(2)
	}
	if *degree < 1 {
		fmt.Fprintln(os.Stderr, "ckptinfo: -R must be >= 1")
		os.Exit(2)
	}
	snap, err := ckpt.Load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("checkpoint of a %d-PE run taken at t=%.4fs (virtual)\n", snap.NumPEs, snap.TakenAt)
	fmt.Printf("total payload: %d bytes across %d arrays\n\n", snap.TotalBytes(), len(snap.Arrays))

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "array\telements\tbytes\tavg_bytes/elem")
	for _, a := range snap.Arrays {
		var bytes int
		for _, e := range a.Elems {
			bytes += len(e.Data)
		}
		avg := 0
		if len(a.Elems) > 0 {
			avg = bytes / len(a.Elems)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\n", a.Name, len(a.Elems), bytes, avg)
	}
	tw.Flush()

	if *buddies || *planFile != "" {
		per := snap.PerPEBytes(snap.NumPEs)
		if *buddies {
			// Resident bytes per PE at the chosen degree: own shard plus
			// every shard held for a ring predecessor.
			resident := make([]int64, snap.NumPEs)
			for pe := 0; pe < snap.NumPEs; pe++ {
				resident[pe] += per[pe]
				for _, h := range ckpt.ReplicasOf(pe, snap.NumPEs, *degree) {
					resident[h] += per[pe]
				}
			}
			fmt.Printf("\nin-memory replica map at degree R=%d\n", *degree)
			tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
			fmt.Fprintln(tw, "PE\tholders\tbytes_resident\tbytes_restored_on_failure")
			for pe := 0; pe < snap.NumPEs; pe++ {
				fmt.Fprintf(tw, "%d\t%v\t%d\t%d\n",
					pe, ckpt.ReplicasOf(pe, snap.NumPEs, *degree), resident[pe], per[pe])
			}
			tw.Flush()

			// The R-vs-memory tradeoff: what raising the degree costs in
			// resident bytes and checkpoint time, and what it buys — the
			// number of simultaneous failures every PE provably survives.
			tm := ckpt.DefaultModel(snap.NumPEs)
			fmt.Println("\ndegree sweep (survives = simultaneous ring-neighbor failures tolerated):")
			tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
			fmt.Fprintln(tw, "R\tworst_pe_bytes\ttotal_bytes\tckpt_time_s\tsurvives")
			for r := 1; r <= 3; r++ {
				worst, total := ckpt.ReplicaMemoryBytes(snap, snap.NumPEs, r)
				fmt.Fprintf(tw, "%d\t%d\t%d\t%.6f\t%d\n",
					r, worst, total, float64(ckpt.MemCheckpointTime(snap, snap.NumPEs, r, tm)), r)
			}
			tw.Flush()
		}
		if *planFile != "" {
			data, err := os.ReadFile(*planFile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			var plan chaos.Plan
			if err := json.Unmarshal(data, &plan); err != nil {
				fmt.Fprintf(os.Stderr, "ckptinfo: parsing %s: %v\n", *planFile, err)
				os.Exit(1)
			}
			if err := plan.Validate(snap.NumPEs); err != nil {
				fmt.Fprintf(os.Stderr, "ckptinfo: plan does not fit this %d-PE checkpoint: %v\n", snap.NumPEs, err)
				os.Exit(1)
			}
			// A crash is only unrecoverable when the failed PE AND all R of
			// its holders are down in the same recovery window, so the
			// quantity an operator cares about is how many of each crash
			// PE's holders are themselves crash targets elsewhere in the
			// plan ("holders under fire"): the degree must exceed that
			// count for the worst-case overlap to stay survivable.
			crashed := map[int]bool{}
			for _, f := range plan.Faults {
				if f.Kind == chaos.FaultCrash {
					crashed[f.PE] = true
				}
			}
			fmt.Printf("\nplan seed %d: %d faults, %d crashes, %d warns; replica degree R=%d\n",
				plan.Seed, len(plan.Faults), plan.Crashes(), plan.Warns(), *degree)
			tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
			fmt.Fprintln(tw, "t_virtual\tkind\tpe\tholders\tholders_under_fire\tbytes_streamed")
			worstOverlap := 0
			for _, f := range plan.Faults {
				if f.Kind != chaos.FaultCrash && f.Kind != chaos.FaultWarn {
					continue
				}
				holders := ckpt.ReplicasOf(f.PE, snap.NumPEs, *degree)
				fire := 0
				for _, h := range holders {
					if crashed[h] {
						fire++
					}
				}
				if f.Kind == chaos.FaultCrash && fire > worstOverlap {
					worstOverlap = fire
				}
				fmt.Fprintf(tw, "%.6f\t%s\t%d\t%v\t%d\t%d\n",
					f.At, f.Kind, f.PE, holders, fire, per[f.PE])
			}
			tw.Flush()
			if worstOverlap >= *degree {
				fmt.Printf("WARNING: a crash PE has all %d holders under fire; if those failures overlap one recovery window the checkpoint is lost — consider -R %d or higher\n",
					*degree, worstOverlap+1)
			} else {
				fmt.Printf("every crash keeps at least %d live holder(s) even under full plan overlap\n",
					*degree-worstOverlap)
			}
		}
	}

	if *perPE {
		counts := make(map[int]int)
		bytes := make(map[int]int)
		maxPE := 0
		for _, a := range snap.Arrays {
			for _, e := range a.Elems {
				counts[e.PE]++
				bytes[e.PE] += len(e.Data)
				if e.PE > maxPE {
					maxPE = e.PE
				}
			}
		}
		fmt.Println()
		tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "PE\telements\tbytes")
		for pe := 0; pe <= maxPE; pe++ {
			if counts[pe] == 0 {
				continue
			}
			fmt.Fprintf(tw, "%d\t%d\t%d\n", pe, counts[pe], bytes[pe])
		}
		tw.Flush()
	}
}
