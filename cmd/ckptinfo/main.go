// Command ckptinfo inspects a checkpoint file written by the disk
// checkpoint layer (Snapshot.Save / cmd/amr3d -ckpt / ccsjob's ckpt
// handler): the job-level metadata, per-array element counts and sizes,
// and optionally the per-PE data distribution at capture time.
//
// With -buddies it prints the double in-memory scheme's buddy map and the
// bytes each buddy would stream back if its partner failed; with
// -plan <file> it reads a chaos fault plan (the "plan" object of
// BENCH_chaos.json, or a hand-written one) and prints the blast radius of
// every planned crash — which PE dies, who restores it, and how many
// checkpoint bytes that restore streams — so an operator can judge a
// campaign before running it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"charmgo/internal/chaos"
	"charmgo/internal/ckpt"
)

func main() {
	perPE := flag.Bool("pe", false, "show the per-PE byte distribution")
	buddies := flag.Bool("buddies", false, "show the in-memory checkpoint buddy map and restore volumes")
	planFile := flag.String("plan", "", "chaos plan JSON: show each planned crash's blast radius")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ckptinfo [-pe] [-buddies] [-plan plan.json] <checkpoint-file>")
		os.Exit(2)
	}
	snap, err := ckpt.Load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("checkpoint of a %d-PE run taken at t=%.4fs (virtual)\n", snap.NumPEs, snap.TakenAt)
	fmt.Printf("total payload: %d bytes across %d arrays\n\n", snap.TotalBytes(), len(snap.Arrays))

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "array\telements\tbytes\tavg_bytes/elem")
	for _, a := range snap.Arrays {
		var bytes int
		for _, e := range a.Elems {
			bytes += len(e.Data)
		}
		avg := 0
		if len(a.Elems) > 0 {
			avg = bytes / len(a.Elems)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\n", a.Name, len(a.Elems), bytes, avg)
	}
	tw.Flush()

	if *buddies || *planFile != "" {
		per := snap.PerPEBytes(snap.NumPEs)
		if *buddies {
			fmt.Println()
			tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
			fmt.Fprintln(tw, "PE\tbuddy\tbytes_restored_on_failure")
			for pe := 0; pe < snap.NumPEs; pe++ {
				fmt.Fprintf(tw, "%d\t%d\t%d\n", pe, ckpt.BuddyOf(pe, snap.NumPEs), per[pe])
			}
			tw.Flush()
		}
		if *planFile != "" {
			data, err := os.ReadFile(*planFile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			var plan chaos.Plan
			if err := json.Unmarshal(data, &plan); err != nil {
				fmt.Fprintf(os.Stderr, "ckptinfo: parsing %s: %v\n", *planFile, err)
				os.Exit(1)
			}
			if err := plan.Validate(snap.NumPEs); err != nil {
				fmt.Fprintf(os.Stderr, "ckptinfo: plan does not fit this %d-PE checkpoint: %v\n", snap.NumPEs, err)
				os.Exit(1)
			}
			fmt.Printf("\nplan seed %d: %d faults, %d crashes\n", plan.Seed, len(plan.Faults), plan.Crashes())
			tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
			fmt.Fprintln(tw, "t_virtual\tcrash_pe\tbuddy\tbytes_streamed")
			for _, f := range plan.Faults {
				if f.Kind != chaos.FaultCrash {
					continue
				}
				fmt.Fprintf(tw, "%.6f\t%d\t%d\t%d\n",
					f.At, f.PE, ckpt.BuddyOf(f.PE, snap.NumPEs), per[f.PE])
			}
			tw.Flush()
		}
	}

	if *perPE {
		counts := make(map[int]int)
		bytes := make(map[int]int)
		maxPE := 0
		for _, a := range snap.Arrays {
			for _, e := range a.Elems {
				counts[e.PE]++
				bytes[e.PE] += len(e.Data)
				if e.PE > maxPE {
					maxPE = e.PE
				}
			}
		}
		fmt.Println()
		tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "PE\telements\tbytes")
		for pe := 0; pe <= maxPE; pe++ {
			if counts[pe] == 0 {
				continue
			}
			fmt.Fprintf(tw, "%d\t%d\t%d\n", pe, counts[pe], bytes[pe])
		}
		tw.Flush()
	}
}
