// Command ckptinfo inspects a checkpoint file written by the disk
// checkpoint layer (Snapshot.Save / cmd/amr3d -ckpt / ccsjob's ckpt
// handler): the job-level metadata, per-array element counts and sizes,
// and optionally the per-PE data distribution at capture time.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"charmgo/internal/ckpt"
)

func main() {
	perPE := flag.Bool("pe", false, "show the per-PE byte distribution")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ckptinfo [-pe] <checkpoint-file>")
		os.Exit(2)
	}
	snap, err := ckpt.Load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("checkpoint of a %d-PE run taken at t=%.4fs (virtual)\n", snap.NumPEs, snap.TakenAt)
	fmt.Printf("total payload: %d bytes across %d arrays\n\n", snap.TotalBytes(), len(snap.Arrays))

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "array\telements\tbytes\tavg_bytes/elem")
	for _, a := range snap.Arrays {
		var bytes int
		for _, e := range a.Elems {
			bytes += len(e.Data)
		}
		avg := 0
		if len(a.Elems) > 0 {
			avg = bytes / len(a.Elems)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\n", a.Name, len(a.Elems), bytes, avg)
	}
	tw.Flush()

	if *perPE {
		counts := make(map[int]int)
		bytes := make(map[int]int)
		maxPE := 0
		for _, a := range snap.Arrays {
			for _, e := range a.Elems {
				counts[e.PE]++
				bytes[e.PE] += len(e.Data)
				if e.PE > maxPE {
					maxPE = e.PE
				}
			}
		}
		fmt.Println()
		tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "PE\telements\tbytes")
		for pe := 0; pe <= maxPE; pe++ {
			if counts[pe] == 0 {
				continue
			}
			fmt.Fprintf(tw, "%d\t%d\t%d\n", pe, counts[pe], bytes[pe])
		}
		tw.Flush()
	}
}
