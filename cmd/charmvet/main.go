// Command charmvet runs the determinism & PUP-completeness static-analysis
// suite over the module:
//
//	go run ./cmd/charmvet ./...
//
// It prints one line per violation (file:line:col: [analyzer] message) and
// exits nonzero when any are found. The same suite runs in CI through
// TestCharmvetClean, so the CLI is for local iteration: run it after
// touching event-producing code or a Pup method.
package main

import (
	"flag"
	"fmt"
	"os"

	"charmgo/internal/analysis"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: charmvet [packages]\n\n")
		fmt.Fprintf(os.Stderr, "Analyzers:\n")
		for _, a := range analysis.DefaultSuite().Analyzers {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	findings := analysis.DefaultSuite().Run(pkgs)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "charmvet: %d violation(s)\n", len(findings))
		os.Exit(1)
	}
}
