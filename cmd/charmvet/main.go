// Command charmvet runs the determinism & PUP-completeness static-analysis
// suite over the module:
//
//	go run ./cmd/charmvet ./...
//
// It prints one line per violation (file:line:col: [analyzer] message) and
// exits nonzero when any are found. The same suite runs in CI through
// TestCharmvetClean, so the CLI is for local iteration: run it after
// touching event-producing code or a Pup method.
//
// Flags:
//
//	-analyzers a,b    run only the named analyzers
//	-why              print each finding's root→sink call chain, one hop
//	                  per line, instead of the inline (via ...) suffix
//	-json             machine-readable output: a JSON array of findings
//	-baseline FILE    suppress findings recorded in FILE; only new
//	                  findings count toward the exit status
//	-update-baseline  rewrite the -baseline file (default
//	                  charmvet.baseline) from the current findings
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"charmgo/internal/analysis"
)

func main() {
	var (
		jsonOut   = flag.Bool("json", false, "emit findings as a JSON array")
		why       = flag.Bool("why", false, "print full call chains, one hop per line")
		names     = flag.String("analyzers", "", "comma-separated analyzer names to run (default: all)")
		baseline  = flag.String("baseline", "", "baseline file of known findings to suppress")
		updateB   = flag.Bool("update-baseline", false, "rewrite the baseline file from current findings")
		baseDeflt = "charmvet.baseline"
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: charmvet [flags] [packages]\n\n")
		fmt.Fprintf(os.Stderr, "Analyzers:\n")
		for _, a := range analysis.DefaultSuite().Analyzers {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(os.Stderr, "\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	suite := analysis.DefaultSuite()
	if *names != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range suite.Analyzers {
			byName[a.Name] = a
		}
		var picked []*analysis.Analyzer
		for _, name := range strings.Split(*names, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "charmvet: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			picked = append(picked, a)
		}
		suite.Analyzers = picked
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	findings := suite.Run(pkgs)

	if *updateB {
		file := *baseline
		if file == "" {
			file = baseDeflt
		}
		if err := os.WriteFile(file, []byte(analysis.FormatBaseline(findings)), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "charmvet:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "charmvet: wrote %d finding(s) to %s\n", len(findings), file)
		return
	}

	suppressed := 0
	if *baseline != "" {
		f, err := os.Open(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "charmvet:", err)
			os.Exit(2)
		}
		base, err := analysis.ParseBaseline(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "charmvet:", err)
			os.Exit(2)
		}
		findings, suppressed = analysis.FilterBaseline(findings, base)
	}

	switch {
	case *jsonOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []analysis.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "charmvet:", err)
			os.Exit(2)
		}
	case *why:
		for _, f := range findings {
			// The chain is shown hop by hop below; drop its inline form.
			if i := strings.Index(f.Message, " (via "); i >= 0 {
				f.Message = f.Message[:i]
			}
			fmt.Println(f)
			for i, hop := range f.Chain {
				fmt.Printf("    %s%s\n", strings.Repeat("  ", i), hop)
			}
		}
	default:
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if suppressed > 0 {
		fmt.Fprintf(os.Stderr, "charmvet: %d baseline finding(s) suppressed\n", suppressed)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "charmvet: %d violation(s)\n", len(findings))
		os.Exit(1)
	}
}
