// parsimbench measures the event core. Three modes:
//
//   - default: the parallel (parsim) backend against the sequential engine
//     on a large Stencil2D run, emitting BENCH_parsim.json. The two
//     backends are required to produce identical results — the benchmark
//     refuses to report a speedup on diverging runs.
//   - -micro: LeanMD and PDES microbenchmarks on the calendar-queue engine
//     against the reference binary-heap engine, in one process. The ratio
//     is host-independent in the sense that both engines run the same
//     event stream on the same host back to back.
//   - -scale: Stencil2D at 1k/8k/64k virtual PEs, recording events/sec,
//     bytes/event, allocs/event, steady-state allocs/event, and live heap,
//     emitting BENCH_scale.json (the budget file scripts/bench.sh gates
//     against).
//
// Wall-clock speedup depends on the host: with fewer physical CPUs than
// workers the parallel backend degrades gracefully toward sequential
// speed. The report therefore also includes host_cpus and the engine's
// own scheduling counters — phase_parallel_fraction says how much of the
// event stream the engine proved independent and handed to workers, which
// is a host-independent measure of the parallelism exposed.
//
// Usage:
//
//	go run ./cmd/parsimbench -out BENCH_parsim.json   # full benchmark
//	go run ./cmd/parsimbench -smoke                   # small config for CI
//	go run ./cmd/parsimbench -micro                   # calendar vs heap engines
//	go run ./cmd/parsimbench -scale -out BENCH_scale.json
//	go run ./cmd/parsimbench -gate BENCH_scale.json   # fail on >20% regression
//	go run ./cmd/parsimbench -backend optimistic -snap-interval K  # state-saving interval
//	go run ./cmd/parsimbench -backend optimistic -snap-sweep       # K=1/4/16 vs adaptive
//	go run ./cmd/parsimbench -gate-optsim BENCH_optsim.json  # fail on snapshot-churn regression
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	"charmgo/internal/apps/leanmd"
	"charmgo/internal/apps/pdes"
	"charmgo/internal/apps/stencil"
	"charmgo/internal/charm"
	"charmgo/internal/machine"
	"charmgo/internal/optsim"
	"charmgo/internal/parsim"
	"charmgo/internal/pup"
	"charmgo/internal/telemetry"
)

type result struct {
	Benchmark        string  `json:"benchmark"`
	Machine          string  `json:"machine"`
	VirtualPEs       int     `json:"virtual_pes"`
	GridN            int     `json:"grid_n"`
	Chares           int     `json:"chares"` // per dimension
	Iters            int     `json:"iters"`
	HostCPUs         int     `json:"host_cpus"`
	GOMAXPROCS       int     `json:"gomaxprocs"`
	Workers          int     `json:"workers"`
	SequentialNsOp   int64   `json:"sequential_ns_per_op"`
	ParallelNsOp     int64   `json:"parallel_ns_per_op"`
	Speedup          float64 `json:"speedup"`
	EventsExecuted   uint64  `json:"events_executed"`
	PhasesLaunched   uint64  `json:"phases_launched"`
	PhasesInline     uint64  `json:"phases_inline"`
	GlobalEvents     uint64  `json:"global_events"`
	MaxInFlight      int     `json:"max_in_flight"`
	ParallelFraction float64 `json:"phase_parallel_fraction"`
	DigestsIdentical bool    `json:"digests_identical"`
}

func main() {
	smoke := flag.Bool("smoke", false, "small configuration for CI: validates the harness, not the speedup")
	out := flag.String("out", "", "write the JSON report to this file (default: stdout only)")
	workers := flag.Int("workers", 8, "parsim worker goroutines (and GOMAXPROCS) for the parallel run")
	micro := flag.Bool("micro", false, "run the LeanMD/PDES calendar-vs-heap engine microbenchmarks")
	backend := flag.String("backend", "", "benchmark the named backend ('optimistic') against sequential and conservative-parallel on a low-lookahead PDES run")
	scale := flag.Bool("scale", false, "run the 1k/8k/64k virtual-PE scale benchmark")
	gate := flag.String("gate", "", "re-run the scale benchmark and fail on >20% regression against this budget file")
	snapInterval := flag.Int("snap-interval", 0, "optimistic backend state-saving interval: image a chare every K-th speculated execution and replay between (0 = adaptive, 1 = eager per-execution snapshots)")
	snapSweep := flag.Bool("snap-sweep", false, "sweep the optimistic backend over fixed snap intervals and the adaptive policy (requires -backend optimistic)")
	gateOptsim := flag.String("gate-optsim", "", "re-run the optimistic PHOLD benchmark and fail on snapshot-churn regression against this budget file (BENCH_optsim.json)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	telemetryAddr := flag.String("telemetry", "", "serve live introspection (/status, /metrics, /events, pprof) on this address during benchmark runs")
	telbench := flag.Bool("telbench", false, "measure the telemetry layer's overhead (attached vs detached) on all three backends")
	flag.Parse()
	telemetryServeAddr = *telemetryAddr

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memprofile != "" {
			f, err := os.Create(*memprofile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}
	}()

	switch {
	case *gate != "":
		runGate(*gate)
	case *gateOptsim != "":
		runOptsimGate(*gateOptsim, *workers)
	case *telbench:
		emit(runTelbench(*smoke, *workers), *out)
	case *micro:
		emit(runMicro(*smoke), *out)
	case *scale:
		emit(runScale(*smoke), *out)
	case *backend == "optimistic" && *snapSweep:
		emit(runSnapSweep(*smoke, *workers), *out)
	case *backend == "optimistic":
		emit(runOptsim(*smoke, *workers, *snapInterval), *out)
	case *backend != "":
		fatal(fmt.Errorf("unknown -backend %q (want optimistic)", *backend))
	default:
		emit(runParsim(*smoke, *workers), *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "parsimbench:", err)
	os.Exit(1)
}

func emit(v any, out string) {
	enc, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	os.Stdout.Write(enc)
	if out != "" {
		if err := os.WriteFile(out, enc, 0o644); err != nil {
			fatal(err)
		}
	}
}

// ---- default mode: parsim vs sequential ----

func runParsim(smoke bool, workers int) result {
	pes, grid, chares, iters := 256, 4096, 16, 20
	if smoke {
		pes, grid, chares, iters = 16, 192, 4, 6
	}
	cfg := stencil.Config{GridN: grid, Chares: chares, Iters: iters}

	runtime.GOMAXPROCS(workers)

	seqNs, seqSummary, _ := run(pes, "sequential", 0, cfg)
	parNs, parSummary, eng := run(pes, "parallel", workers, cfg)
	st := eng.(*parsim.Engine).EngineStats()

	r := result{
		Benchmark:        "Stencil2D/jacobi",
		Machine:          fmt.Sprintf("Testbed(%d)", pes),
		VirtualPEs:       pes,
		GridN:            grid,
		Chares:           chares,
		Iters:            iters,
		HostCPUs:         runtime.NumCPU(),
		GOMAXPROCS:       workers,
		Workers:          workers,
		SequentialNsOp:   seqNs,
		ParallelNsOp:     parNs,
		Speedup:          float64(seqNs) / float64(parNs),
		EventsExecuted:   st.Launched + st.Inline + st.Global,
		PhasesLaunched:   st.Launched,
		PhasesInline:     st.Inline,
		GlobalEvents:     st.Global,
		MaxInFlight:      st.MaxInFlight,
		ParallelFraction: float64(st.Launched) / float64(st.Launched+st.Inline+st.Global),
		DigestsIdentical: seqSummary == parSummary,
	}
	if !r.DigestsIdentical {
		fmt.Fprintf(os.Stderr, "parsimbench: backend divergence!\n  sequential: %s\n  parallel:   %s\n", seqSummary, parSummary)
		os.Exit(1)
	}
	return r
}

// telemetryServeAddr, when set via -telemetry, serves live introspection
// during each benchmark run (the server is rebound per run so the address
// always shows the run in progress).
var telemetryServeAddr string

// telemetrySession pairs an attached probe with its HTTP server so the
// cleanup is a plain method rather than a func() literal — charmvet's
// indirect-call resolution is signature-keyed, and a func() closure here
// would alias unrelated func() callbacks (e.g. chaos Restart hooks) in
// the call graph.
type telemetrySession struct {
	tel *telemetry.Telemetry
	srv *telemetry.Server
}

// finish publishes the final snapshot and closes the server; nil-safe so
// callers can defer it unconditionally.
func (s *telemetrySession) finish() {
	if s == nil {
		return
	}
	s.tel.Final()
	s.srv.Close()
}

// serveTelemetry attaches telemetry (and the HTTP endpoint) to a bench
// runtime when -telemetry is set; it returns nil when the flag is off.
func serveTelemetry(rt *charm.Runtime) *telemetrySession {
	if telemetryServeAddr == "" {
		return nil
	}
	tel := telemetry.Attach(rt, telemetry.Options{})
	srv, err := telemetry.Serve(telemetryServeAddr, tel)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "parsimbench: telemetry on http://%s\n", srv.Addr())
	return &telemetrySession{tel: tel, srv: srv}
}

// run executes one Stencil2D simulation and returns wall-clock ns, a
// result summary for the cross-backend identity check, and the engine.
func run(pes int, backend string, workers int, cfg stencil.Config) (int64, string, interface{ Executed() uint64 }) {
	mc := machine.Testbed(pes)
	mc.Backend = backend
	mc.ParallelWorkers = workers
	rt := charm.New(machine.New(mc))
	defer serveTelemetry(rt).finish()
	start := time.Now()
	res, err := stencil.Run(rt, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "parsimbench: %s run: %v\n", backend, err)
		os.Exit(1)
	}
	ns := time.Since(start).Nanoseconds()
	summary := fmt.Sprintf("events=%d residuals=%v done=%v", rt.Engine().Executed(), res.Residuals, res.IterDone)
	return ns, summary, rt.Engine()
}

// ---- -backend optimistic: Time Warp vs conservative vs sequential ----

// optsimResult is the BENCH_optsim.json payload: the same low-lookahead
// PDES/PHOLD run on all three backends, with the Time Warp engine's
// speculation accounting. The workload is deliberately low-α (lookahead
// tiny relative to the mean event spacing), the regime where conservative
// windows contain almost nothing runnable and optimism is the only source
// of parallelism.
type optsimResult struct {
	Benchmark    string `json:"benchmark"`
	Machine      string `json:"machine"`
	LPs          int    `json:"lps"`
	EventsPerLP  int    `json:"events_per_lp"`
	TargetEvents int    `json:"target_events"`
	// Alpha = lookahead / (lookahead + mean extra delay): the fraction of
	// an average event gap the conservative scheduler can prove safe.
	Lookahead float64 `json:"lookahead"`
	MeanDelay float64 `json:"mean_delay"`
	Alpha     float64 `json:"alpha"`

	HostCPUs   int `json:"host_cpus"`
	GOMAXPROCS int `json:"gomaxprocs"`
	Workers    int `json:"workers"`

	SequentialNsOp      int64   `json:"sequential_ns_per_op"`
	ParallelNsOp        int64   `json:"parallel_ns_per_op"`
	OptimisticNsOp      int64   `json:"optimistic_ns_per_op"`
	SpeedupVsSequential float64 `json:"speedup_vs_sequential"`
	SpeedupVsParallel   float64 `json:"speedup_vs_parallel"`

	// Speculation accounting (see internal/optsim's Stats).
	Launched           uint64  `json:"spec_launched"`
	Committed          uint64  `json:"spec_committed"`
	RolledBack         uint64  `json:"spec_rolled_back"`
	Inline             uint64  `json:"inline_events"`
	GlobalEvents       uint64  `json:"global_events"`
	MaxInFlight        int     `json:"max_in_flight"`
	MaxGVTLagSec       float64 `json:"max_gvt_lag_sec"`
	RollbackRatio      float64 `json:"rollback_ratio"`
	WastedWorkFraction float64 `json:"wasted_work_fraction"`

	// State-saving accounting (see charm.SpecSaveStats). SnapInterval is
	// the configured interval (0 = adaptive); FinalSnapInterval and
	// FinalWindowSec are the adaptive policy's last values. All counters
	// are deterministic: re-running the benchmark reproduces them exactly.
	SnapshotCount     uint64  `json:"snapshots"`
	SnapshotBytes     uint64  `json:"snapshot_bytes"`
	SnapshotsAvoided  uint64  `json:"snapshots_avoided"`
	Restores          uint64  `json:"snapshot_restores"`
	Replays           uint64  `json:"replays"`
	LoggedDeliveries  uint64  `json:"logged_deliveries"`
	Invalidations     uint64  `json:"save_invalidations"`
	SnapInterval      int     `json:"snap_interval"`
	FinalSnapInterval int     `json:"final_snap_interval"`
	FinalWindowSec    float64 `json:"final_window_sec"`

	DigestsIdentical bool `json:"digests_identical"`
}

func runOptsim(smoke bool, workers, snapInterval int) optsimResult {
	pes, lps, target := 16, 256, 200000
	if smoke {
		pes, lps, target = 8, 64, 8000
	}
	cfg := pdes.Config{
		LPs: lps, EventsPerLP: 8, TargetEvents: target, Seed: 42,
		// Low α: the conservative window covers ~1% of the mean event gap,
		// so YAWNS commits nearly everything inline while Time Warp can
		// still speculate shard-by-shard past the frontier.
		Lookahead: 0.05, MeanDelay: 4.0,
	}

	runtime.GOMAXPROCS(workers)

	seqNs, seqSummary, _ := runPDESBench(pes, "sequential", 0, 0, cfg)
	parNs, parSummary, _ := runPDESBench(pes, "parallel", workers, 0, cfg)
	optNs, optSummary, optRT := runPDESBench(pes, "optimistic", workers, snapInterval, cfg)
	st := optRT.Engine().(*optsim.Engine).EngineStats()
	saves := optRT.SpecSaveStats()

	r := optsimResult{
		Benchmark:    "PDES/phold-low-alpha",
		Machine:      fmt.Sprintf("Testbed(%d)", pes),
		LPs:          lps,
		EventsPerLP:  cfg.EventsPerLP,
		TargetEvents: target,
		Lookahead:    cfg.Lookahead,
		MeanDelay:    cfg.MeanDelay,
		Alpha:        cfg.Lookahead / (cfg.Lookahead + cfg.MeanDelay),

		HostCPUs:   runtime.NumCPU(),
		GOMAXPROCS: workers,
		Workers:    workers,

		SequentialNsOp:      seqNs,
		ParallelNsOp:        parNs,
		OptimisticNsOp:      optNs,
		SpeedupVsSequential: float64(seqNs) / float64(optNs),
		SpeedupVsParallel:   float64(parNs) / float64(optNs),

		Launched:           st.Launched,
		Committed:          st.Committed,
		RolledBack:         st.RolledBack,
		Inline:             st.Inline,
		GlobalEvents:       st.Global,
		MaxInFlight:        st.MaxInFlight,
		MaxGVTLagSec:       float64(st.MaxGVTLag),
		RollbackRatio:      st.RollbackRatio(),
		WastedWorkFraction: st.WastedFraction(),

		SnapshotCount:     saves.Snapshots,
		SnapshotBytes:     saves.SnapshotBytes,
		SnapshotsAvoided:  saves.SnapshotsAvoided,
		Restores:          saves.Restores,
		Replays:           saves.Replays,
		LoggedDeliveries:  saves.LoggedDeliveries,
		Invalidations:     saves.Invalidations,
		SnapInterval:      snapInterval,
		FinalSnapInterval: saves.SnapInterval,
		FinalWindowSec:    saves.Window,

		DigestsIdentical: seqSummary == parSummary && seqSummary == optSummary,
	}
	if !r.DigestsIdentical {
		fmt.Fprintf(os.Stderr, "parsimbench: backend divergence!\n  sequential: %s\n  parallel:   %s\n  optimistic: %s\n",
			seqSummary, parSummary, optSummary)
		os.Exit(1)
	}
	return r
}

// ---- -snap-sweep mode: adaptive vs fixed state-saving intervals ----

// snapSweepPoint is one interval's cell in the adaptive-vs-fixed sweep.
type snapSweepPoint struct {
	// SnapInterval is the configured interval; 0 is the adaptive policy.
	SnapInterval     int     `json:"snap_interval"`
	OptimisticNsOp   int64   `json:"optimistic_ns_per_op"`
	Snapshots        uint64  `json:"snapshots"`
	SnapshotBytes    uint64  `json:"snapshot_bytes"`
	SnapshotsAvoided uint64  `json:"snapshots_avoided"`
	Replays          uint64  `json:"replays"`
	RolledBack       uint64  `json:"spec_rolled_back"`
	FinalInterval    int     `json:"final_snap_interval"`
	BytesVsEagerX    float64 `json:"bytes_reduction_vs_eager"`
	DigestsIdentical bool    `json:"digests_identical"`
}

// snapSweepResult is the BENCH payload of the adaptive-vs-fixed sweep: the
// same low-α PHOLD run at eager (K=1), fixed K, and the adaptive policy,
// digest-checked against sequential at every point.
type snapSweepResult struct {
	Benchmark  string           `json:"benchmark"`
	Machine    string           `json:"machine"`
	LPs        int              `json:"lps"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	Points     []snapSweepPoint `json:"points"`
}

func runSnapSweep(smoke bool, workers int) snapSweepResult {
	pes, lps, target := 16, 256, 200000
	if smoke {
		pes, lps, target = 8, 64, 8000
	}
	cfg := pdes.Config{
		LPs: lps, EventsPerLP: 8, TargetEvents: target, Seed: 42,
		Lookahead: 0.05, MeanDelay: 4.0,
	}
	runtime.GOMAXPROCS(workers)
	_, seqSummary, _ := runPDESBench(pes, "sequential", 0, 0, cfg)

	r := snapSweepResult{
		Benchmark:  "PDES/phold-low-alpha snap-interval sweep",
		Machine:    fmt.Sprintf("Testbed(%d)", pes),
		LPs:        lps,
		GOMAXPROCS: workers,
	}
	var eagerBytes uint64
	for _, k := range []int{1, 4, 16, 0} {
		ns, summary, rt := runPDESBench(pes, "optimistic", workers, k, cfg)
		st := rt.Engine().(*optsim.Engine).EngineStats()
		saves := rt.SpecSaveStats()
		p := snapSweepPoint{
			SnapInterval:     k,
			OptimisticNsOp:   ns,
			Snapshots:        saves.Snapshots,
			SnapshotBytes:    saves.SnapshotBytes,
			SnapshotsAvoided: saves.SnapshotsAvoided,
			Replays:          saves.Replays,
			RolledBack:       st.RolledBack,
			FinalInterval:    saves.SnapInterval,
			DigestsIdentical: summary == seqSummary,
		}
		if k == 1 {
			eagerBytes = saves.SnapshotBytes
		}
		if eagerBytes > 0 && saves.SnapshotBytes > 0 {
			p.BytesVsEagerX = float64(eagerBytes) / float64(saves.SnapshotBytes)
		}
		if !p.DigestsIdentical {
			fmt.Fprintf(os.Stderr, "parsimbench: snap-interval %d diverged from sequential!\n  sequential: %s\n  optimistic: %s\n",
				k, seqSummary, summary)
			os.Exit(1)
		}
		r.Points = append(r.Points, p)
	}
	return r
}

// runPDESBench executes one PDES run and returns wall-clock ns, a result
// summary for the cross-backend identity check, and the runtime.
func runPDESBench(pes int, backend string, workers, snapInterval int, cfg pdes.Config) (int64, string, *charm.Runtime) {
	mc := machine.Testbed(pes)
	mc.Backend = backend
	mc.ParallelWorkers = workers
	mc.SnapInterval = snapInterval
	rt := charm.New(machine.New(mc))
	defer serveTelemetry(rt).finish()
	start := time.Now()
	res, err := pdes.Run(rt, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "parsimbench: %s run: %v\n", backend, err)
		os.Exit(1)
	}
	ns := time.Since(start).Nanoseconds()
	summary := fmt.Sprintf("events=%d committed=%d windows=%d elapsed=%v maxvt=%v",
		rt.Engine().Executed(), res.Committed, res.Windows, res.Elapsed, res.MaxVT)
	return ns, summary, rt
}

// ---- -telbench mode: telemetry-layer overhead ----

// telemetryBackendResult is one backend's attached-vs-detached comparison.
type telemetryBackendResult struct {
	Backend          string  `json:"backend"`
	DisabledNs       int64   `json:"disabled_ns_per_op"`
	EnabledNs        int64   `json:"enabled_ns_per_op"`
	OverheadPct      float64 `json:"overhead_pct"`
	EventsExecuted   uint64  `json:"events_executed"`
	DigestsIdentical bool    `json:"digests_identical"`
}

// telemetryResult is the BENCH_telemetry.json payload: the same Stencil2D
// run on all three backends, with and without the telemetry probe
// attached. Two claims are gated downstream: digests are byte-identical
// either way (the layer is side-band), and the enabled overhead stays a
// small fraction of the run (the hooks are atomic bumps).
type telemetryResult struct {
	Benchmark  string                   `json:"benchmark"`
	Machine    string                   `json:"machine"`
	GridN      int                      `json:"grid_n"`
	Chares     int                      `json:"chares"`
	Iters      int                      `json:"iters"`
	Reps       int                      `json:"reps"`
	HostCPUs   int                      `json:"host_cpus"`
	GOMAXPROCS int                      `json:"gomaxprocs"`
	Backends   []telemetryBackendResult `json:"backends"`
}

func runTelbench(smoke bool, workers int) telemetryResult {
	pes, grid, chares, iters, reps := 64, 768, 8, 12, 5
	if smoke {
		pes, grid, chares, iters, reps = 16, 192, 4, 6, 3
	}
	cfg := stencil.Config{GridN: grid, Chares: chares, Iters: iters}
	runtime.GOMAXPROCS(workers)

	measure := func(backend string, attach bool) (int64, string, uint64) {
		times := make([]int64, 0, reps)
		var summary string
		var events uint64
		for i := 0; i < reps; i++ {
			mc := machine.Testbed(pes)
			mc.Backend = backend
			mc.ParallelWorkers = workers
			rt := charm.New(machine.New(mc))
			var tel *telemetry.Telemetry
			if attach {
				tel = telemetry.Attach(rt, telemetry.Options{FlightDir: os.TempDir()})
			}
			start := time.Now()
			res, err := stencil.Run(rt, cfg)
			if err != nil {
				fatal(fmt.Errorf("telbench %s run: %w", backend, err))
			}
			times = append(times, time.Since(start).Nanoseconds())
			if tel != nil {
				tel.Final()
			}
			summary = fmt.Sprintf("events=%d residuals=%v done=%v",
				rt.Engine().Executed(), res.Residuals, res.IterDone)
			events = rt.Engine().Executed()
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		return times[len(times)/2], summary, events
	}

	r := telemetryResult{
		Benchmark: "Stencil2D/telemetry-overhead",
		Machine:   fmt.Sprintf("Testbed(%d)", pes),
		GridN:     grid, Chares: chares, Iters: iters, Reps: reps,
		HostCPUs: runtime.NumCPU(), GOMAXPROCS: workers,
	}
	for _, backend := range []string{"sequential", "parallel", "optimistic"} {
		offNs, offSum, events := measure(backend, false)
		onNs, onSum, _ := measure(backend, true)
		br := telemetryBackendResult{
			Backend:          backend,
			DisabledNs:       offNs,
			EnabledNs:        onNs,
			OverheadPct:      100 * (float64(onNs) - float64(offNs)) / float64(offNs),
			EventsExecuted:   events,
			DigestsIdentical: offSum == onSum,
		}
		if !br.DigestsIdentical {
			fmt.Fprintf(os.Stderr, "parsimbench: telemetry perturbed the %s run!\n  off: %s\n  on:  %s\n",
				backend, offSum, onSum)
			os.Exit(1)
		}
		r.Backends = append(r.Backends, br)
	}
	return r
}

// ---- -micro mode: calendar-queue engine vs reference heap engine ----

type microResult struct {
	Benchmark          string  `json:"benchmark"`
	VirtualPEs         int     `json:"virtual_pes"`
	Events             uint64  `json:"events"`
	CalendarNs         int64   `json:"calendar_ns"`
	HeapNs             int64   `json:"heap_ns"`
	CalendarEventsSec  float64 `json:"calendar_events_per_sec"`
	HeapEventsSec      float64 `json:"heap_events_per_sec"`
	CalendarOverHeap   float64 `json:"calendar_over_heap"`
	ResultsIdentical   bool    `json:"results_identical"`
	CalendarAllocEvent float64 `json:"calendar_allocs_per_event"`
	HeapAllocEvent     float64 `json:"heap_allocs_per_event"`
}

type microRun struct {
	ns     int64
	events uint64
	allocs uint64
	digest string
}

func microApp(backend string, app func(rt *charm.Runtime) string, pes int) microRun {
	mc := machine.Testbed(pes)
	mc.Backend = backend
	rt := charm.New(machine.New(mc))
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	digest := app(rt)
	ns := time.Since(start).Nanoseconds()
	runtime.ReadMemStats(&after)
	return microRun{
		ns:     ns,
		events: rt.Engine().Executed(),
		allocs: after.Mallocs - before.Mallocs,
		digest: digest,
	}
}

func micro(name string, pes int, app func(rt *charm.Runtime) string) microResult {
	// Warm the process-wide pools so the calendar run (first) is not
	// charged for populating them while the heap run reuses them.
	microApp("sequential", app, pes)
	cal := microApp("sequential", app, pes)
	hp := microApp("heap", app, pes)
	r := microResult{
		Benchmark:          name,
		VirtualPEs:         pes,
		Events:             cal.events,
		CalendarNs:         cal.ns,
		HeapNs:             hp.ns,
		CalendarEventsSec:  float64(cal.events) / (float64(cal.ns) / 1e9),
		HeapEventsSec:      float64(hp.events) / (float64(hp.ns) / 1e9),
		CalendarOverHeap:   float64(hp.ns) / float64(cal.ns),
		ResultsIdentical:   cal.digest == hp.digest && cal.events == hp.events,
		CalendarAllocEvent: float64(cal.allocs) / float64(cal.events),
		HeapAllocEvent:     float64(hp.allocs) / float64(hp.events),
	}
	if !r.ResultsIdentical {
		fmt.Fprintf(os.Stderr, "parsimbench: %s: calendar/heap divergence!\n  calendar: events=%d %s\n  heap:     events=%d %s\n",
			name, cal.events, cal.digest, hp.events, hp.digest)
		os.Exit(1)
	}
	return r
}

func runMicro(smoke bool) []microResult {
	lmdPes, lmdCells, lmdSteps := 64, 6, 8
	pdesPes, pdesLPs, pdesEPL := 64, 64*64, 8
	if smoke {
		lmdPes, lmdCells, lmdSteps = 16, 4, 3
		pdesPes, pdesLPs, pdesEPL = 16, 16*16, 4
	}
	return []microResult{
		micro("LeanMD/steps", lmdPes, func(rt *charm.Runtime) string {
			res, err := leanmd.Run(rt, leanmd.Config{
				CellsX: lmdCells, CellsY: lmdCells, CellsZ: lmdCells,
				AtomsPerCell: 27, Steps: lmdSteps, Seed: 5, MigratePeriod: 100,
			})
			if err != nil {
				fatal(err)
			}
			return fmt.Sprintf("%v", res.StepTimes())
		}),
		micro("PDES/phold", pdesPes, func(rt *charm.Runtime) string {
			res, err := pdes.Run(rt, pdes.Config{
				LPs: pdesLPs, EventsPerLP: pdesEPL,
				TargetEvents: pdesLPs * pdesEPL * 2, Seed: 11,
			})
			if err != nil {
				fatal(err)
			}
			return fmt.Sprintf("%d %v", res.Committed, res.Elapsed)
		}),
	}
}

// ---- -scale mode: virtual-PE scaling with memory accounting ----

type scalePoint struct {
	VirtualPEs  int     `json:"virtual_pes"`
	Chares      int     `json:"chares"`
	GridN       int     `json:"grid_n"`
	Iters       int     `json:"iters"`
	Events      uint64  `json:"events"`
	EventsSec   float64 `json:"events_per_sec"`
	BytesEvent  float64 `json:"bytes_per_event"`
	AllocsEvent float64 `json:"allocs_per_event"`
	// SteadyAllocsEvent isolates the per-event steady state (send +
	// execute) from setup: allocations between an N-iteration and a
	// 3N-iteration run of the same configuration, divided by the extra
	// events.
	SteadyAllocsEvent float64 `json:"steady_allocs_per_event"`
	LiveHeapMB        float64 `json:"live_heap_mb"`
}

type scaleReport struct {
	Benchmark string       `json:"benchmark"`
	HostCPUs  int          `json:"host_cpus"`
	Points    []scalePoint `json:"points"`
	// RuntimeAllocsEvent is allocations per engine event on a nil-payload
	// element ping — the pure runtime send/execute path with no application
	// payload. The budget is ≤2: one Ctx and one commit closure per
	// delivery, amortized over the delivery's events.
	RuntimeAllocsEvent float64 `json:"runtime_allocs_per_event"`
}

func scaleRun(pes, chares, grid, iters int) (ns int64, events, allocs, bytes uint64, liveMB float64) {
	mc := machine.Testbed(pes)
	rt := charm.New(machine.New(mc))
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	if _, err := stencil.Run(rt, stencil.Config{GridN: grid, Chares: chares, Iters: iters}); err != nil {
		fatal(err)
	}
	ns = time.Since(start).Nanoseconds()
	runtime.GC()
	runtime.ReadMemStats(&after)
	return ns, rt.Engine().Executed(),
		after.Mallocs - before.Mallocs,
		after.TotalAlloc - before.TotalAlloc,
		float64(after.HeapAlloc) / (1 << 20)
}

// pingObj is a two-element ping chare: each delivery sends one nil-payload
// message to the peer element until Left reaches zero.
type pingObj struct {
	Peer int
	Left int
}

func (p *pingObj) Pup(pp *pup.Pup) {
	pp.Int(&p.Peer)
	pp.Int(&p.Left)
}

func runtimePingAllocs() float64 {
	rt := charm.New(machine.New(machine.Testbed(2)))
	var arr *charm.Array
	handlers := []charm.Handler{
		func(obj charm.Chare, ctx *charm.Ctx, msg any) {
			o := obj.(*pingObj)
			o.Left--
			if o.Left <= 0 {
				ctx.Exit()
				return
			}
			ctx.Send(arr, charm.Idx1(o.Peer), 0, nil)
		},
	}
	arr = rt.DeclareArray("ping", func() charm.Chare { return &pingObj{} },
		handlers, charm.ArrayOpts{})
	const rounds = 100000
	arr.InsertOn(charm.Idx1(0), &pingObj{Peer: 1, Left: rounds}, 0)
	arr.InsertOn(charm.Idx1(1), &pingObj{Peer: 0, Left: rounds}, 1)
	arr.Broadcast(0, nil)
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	rt.Run()
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(rt.Engine().Executed())
}

// runGate re-runs the full scale configurations and compares each point's
// memory metrics against the committed budget file. Allocation counts,
// bytes, and live heap are properties of the code (fixed Go version), not
// the host, so they gate hard at +20%; events/sec depends on the machine
// running the check and only warns.
func runGate(path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var budget scaleReport
	if err := json.Unmarshal(data, &budget); err != nil {
		fatal(fmt.Errorf("parsing %s: %w", path, err))
	}
	cur := runScale(false)

	const tol = 1.2
	failed := false
	check := func(label string, got, want float64) {
		// Small absolute slack keeps near-zero budgets (runtime allocs
		// ~0.001/event) from failing on measurement noise.
		if got > want*tol+0.05 {
			fmt.Fprintf(os.Stderr, "parsimbench: REGRESSION %s: %.4g exceeds budget %.4g by >20%%\n", label, got, want)
			failed = true
		}
	}
	byPEs := map[int]scalePoint{}
	for _, p := range budget.Points {
		byPEs[p.VirtualPEs] = p
	}
	for _, p := range cur.Points {
		b, ok := byPEs[p.VirtualPEs]
		if !ok {
			fmt.Fprintf(os.Stderr, "parsimbench: no budget for %d virtual PEs in %s; regenerate with -scale -out %s\n", p.VirtualPEs, path, path)
			failed = true
			continue
		}
		if b.GridN != p.GridN || b.Iters != p.Iters || b.Chares != p.Chares {
			fmt.Fprintf(os.Stderr, "parsimbench: budget config for %d PEs is stale (grid/chares/iters changed); regenerate with -scale -out %s\n", p.VirtualPEs, path)
			failed = true
			continue
		}
		pre := fmt.Sprintf("%d PEs ", p.VirtualPEs)
		check(pre+"allocs/event", p.AllocsEvent, b.AllocsEvent)
		check(pre+"steady allocs/event", p.SteadyAllocsEvent, b.SteadyAllocsEvent)
		check(pre+"bytes/event", p.BytesEvent, b.BytesEvent)
		check(pre+"live heap MB", p.LiveHeapMB, b.LiveHeapMB)
		if p.EventsSec < b.EventsSec/tol {
			fmt.Fprintf(os.Stderr, "parsimbench: note: %sevents/sec %.0f below budget %.0f (host-dependent, not gating)\n", pre, p.EventsSec, b.EventsSec)
		}
	}
	check("runtime allocs/event", cur.RuntimeAllocsEvent, budget.RuntimeAllocsEvent)
	if failed {
		os.Exit(1)
	}
	fmt.Printf("parsimbench: scale metrics within 20%% of %s budgets (%d points)\n", path, len(cur.Points))
}

// runOptsimGate re-runs the optimistic PHOLD benchmark and gates the
// snapshot churn against the committed BENCH_optsim.json. Snapshot counts
// and bytes are deterministic (driver-ordered state saving on a fixed
// seed), so any growth is a code change, not noise; they gate hard at
// +20%. Wall-clock speeds are host-dependent and never gate.
func runOptsimGate(path string, workers int) {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var budget optsimResult
	if err := json.Unmarshal(data, &budget); err != nil {
		fatal(fmt.Errorf("parsing %s: %w", path, err))
	}
	cur := runOptsim(false, workers, budget.SnapInterval)
	if cur.LPs != budget.LPs || cur.TargetEvents != budget.TargetEvents ||
		cur.Lookahead != budget.Lookahead || cur.MeanDelay != budget.MeanDelay {
		fatal(fmt.Errorf("budget config in %s is stale (LPs/events/lookahead changed); regenerate with scripts/bench.sh --optsim", path))
	}

	const tol = 1.2
	failed := false
	check := func(label string, got, want uint64) {
		if float64(got) > float64(want)*tol+0.05 {
			fmt.Fprintf(os.Stderr, "parsimbench: REGRESSION %s: %d exceeds budget %d by >20%%\n", label, got, want)
			failed = true
		}
	}
	check("snapshots", cur.SnapshotCount, budget.SnapshotCount)
	check("snapshot bytes", cur.SnapshotBytes, budget.SnapshotBytes)
	// The divergence check already ran inside runOptsim (it exits nonzero
	// on any backend mismatch), so reaching here means digests held.
	if failed {
		os.Exit(1)
	}
	fmt.Printf("parsimbench: optsim snapshot churn within 20%% of %s budgets (%d snapshots, %d bytes)\n",
		path, cur.SnapshotCount, cur.SnapshotBytes)
}

func runScale(smoke bool) scaleReport {
	type cfg struct{ pes, chares, grid, iters int }
	var cfgs []cfg
	if smoke {
		cfgs = []cfg{
			{1024, 64, 512, 4},
			{8192, 128, 512, 2},
		}
	} else {
		cfgs = []cfg{
			{1024, 64, 1024, 8},
			{8192, 128, 1024, 4},
			{65536, 256, 1024, 2},
		}
	}
	rep := scaleReport{
		Benchmark:          "Stencil2D/scale",
		HostCPUs:           runtime.NumCPU(),
		RuntimeAllocsEvent: runtimePingAllocs(),
	}
	for _, c := range cfgs {
		// Warm pools (and the allocator) with a short run of the same shape.
		scaleRun(c.pes, c.chares, c.grid, c.iters)
		ns, ev, allocs, bytes, live := scaleRun(c.pes, c.chares, c.grid, c.iters)
		_, ev3, allocs3, _, _ := scaleRun(c.pes, c.chares, c.grid, 3*c.iters)
		rep.Points = append(rep.Points, scalePoint{
			VirtualPEs:        c.pes,
			Chares:            c.chares * c.chares,
			GridN:             c.grid,
			Iters:             c.iters,
			Events:            ev,
			EventsSec:         float64(ev) / (float64(ns) / 1e9),
			BytesEvent:        float64(bytes) / float64(ev),
			AllocsEvent:       float64(allocs) / float64(ev),
			SteadyAllocsEvent: float64(allocs3-allocs) / float64(ev3-ev),
			LiveHeapMB:        live,
		})
	}
	return rep
}
