// parsimbench measures the parallel (parsim) backend against the
// sequential engine on a large Stencil2D run and emits BENCH_parsim.json.
// The two backends are required to produce identical results — the
// benchmark refuses to report a speedup on diverging runs.
//
// Wall-clock speedup depends on the host: with fewer physical CPUs than
// workers the parallel backend degrades gracefully toward sequential
// speed. The report therefore also includes host_cpus and the engine's
// own scheduling counters — phase_parallel_fraction says how much of the
// event stream the engine proved independent and handed to workers, which
// is a host-independent measure of the parallelism exposed.
//
// Usage:
//
//	go run ./cmd/parsimbench -out BENCH_parsim.json   # full benchmark
//	go run ./cmd/parsimbench -smoke                   # small config for CI
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"charmgo/internal/apps/stencil"
	"charmgo/internal/charm"
	"charmgo/internal/machine"
	"charmgo/internal/parsim"
)

type result struct {
	Benchmark        string  `json:"benchmark"`
	Machine          string  `json:"machine"`
	VirtualPEs       int     `json:"virtual_pes"`
	GridN            int     `json:"grid_n"`
	Chares           int     `json:"chares"` // per dimension
	Iters            int     `json:"iters"`
	HostCPUs         int     `json:"host_cpus"`
	GOMAXPROCS       int     `json:"gomaxprocs"`
	Workers          int     `json:"workers"`
	SequentialNsOp   int64   `json:"sequential_ns_per_op"`
	ParallelNsOp     int64   `json:"parallel_ns_per_op"`
	Speedup          float64 `json:"speedup"`
	EventsExecuted   uint64  `json:"events_executed"`
	PhasesLaunched   uint64  `json:"phases_launched"`
	PhasesInline     uint64  `json:"phases_inline"`
	GlobalEvents     uint64  `json:"global_events"`
	MaxInFlight      int     `json:"max_in_flight"`
	ParallelFraction float64 `json:"phase_parallel_fraction"`
	DigestsIdentical bool    `json:"digests_identical"`
}

func main() {
	smoke := flag.Bool("smoke", false, "small configuration for CI: validates the harness, not the speedup")
	out := flag.String("out", "", "write the JSON report to this file (default: stdout only)")
	workers := flag.Int("workers", 8, "parsim worker goroutines (and GOMAXPROCS) for the parallel run")
	flag.Parse()

	pes, grid, chares, iters := 256, 4096, 16, 20
	if *smoke {
		pes, grid, chares, iters = 16, 192, 4, 6
	}
	cfg := stencil.Config{GridN: grid, Chares: chares, Iters: iters}

	runtime.GOMAXPROCS(*workers)

	seqNs, seqSummary, _ := run(pes, "sequential", 0, cfg)
	parNs, parSummary, eng := run(pes, "parallel", *workers, cfg)
	st := eng.(*parsim.Engine).EngineStats()

	r := result{
		Benchmark:        "Stencil2D/jacobi",
		Machine:          fmt.Sprintf("Testbed(%d)", pes),
		VirtualPEs:       pes,
		GridN:            grid,
		Chares:           chares,
		Iters:            iters,
		HostCPUs:         runtime.NumCPU(),
		GOMAXPROCS:       *workers,
		Workers:          *workers,
		SequentialNsOp:   seqNs,
		ParallelNsOp:     parNs,
		Speedup:          float64(seqNs) / float64(parNs),
		EventsExecuted:   st.Launched + st.Inline + st.Global,
		PhasesLaunched:   st.Launched,
		PhasesInline:     st.Inline,
		GlobalEvents:     st.Global,
		MaxInFlight:      st.MaxInFlight,
		ParallelFraction: float64(st.Launched) / float64(st.Launched+st.Inline+st.Global),
		DigestsIdentical: seqSummary == parSummary,
	}
	if !r.DigestsIdentical {
		fmt.Fprintf(os.Stderr, "parsimbench: backend divergence!\n  sequential: %s\n  parallel:   %s\n", seqSummary, parSummary)
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "parsimbench:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	os.Stdout.Write(enc)
	if *out != "" {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "parsimbench:", err)
			os.Exit(1)
		}
	}
}

// run executes one Stencil2D simulation and returns wall-clock ns, a
// result summary for the cross-backend identity check, and the engine.
func run(pes int, backend string, workers int, cfg stencil.Config) (int64, string, interface{ Executed() uint64 }) {
	mc := machine.Testbed(pes)
	mc.Backend = backend
	mc.ParallelWorkers = workers
	rt := charm.New(machine.New(mc))
	start := time.Now()
	res, err := stencil.Run(rt, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "parsimbench: %s run: %v\n", backend, err)
		os.Exit(1)
	}
	ns := time.Since(start).Nanoseconds()
	summary := fmt.Sprintf("events=%d residuals=%v done=%v", rt.Engine().Executed(), res.Residuals, res.IterDone)
	return ns, summary, rt.Engine()
}
