// Command pdes runs the PHOLD benchmark under the YAWNS conservative
// protocol, reporting committed events, window counts, and event rate,
// optionally through TRAM.
package main

import (
	"flag"
	"fmt"
	"os"

	"charmgo/internal/charm"
	"charmgo/internal/machine"

	"charmgo/internal/apps/pdes"
)

func main() {
	pes := flag.Int("pes", 32, "processing elements")
	lpsPerPE := flag.Int("lps", 64, "logical processes per PE")
	events := flag.Int("events", 16, "initial events per LP")
	target := flag.Int("target", 0, "events to commit (default 4x the population)")
	tram := flag.Bool("tram", false, "aggregate events with TRAM")
	flag.Parse()

	rt := charm.New(machine.New(machine.Stampede(*pes)))
	app, err := pdes.New(rt, pdes.Config{
		LPs: *pes * *lpsPerPE, EventsPerLP: *events,
		TargetEvents: *target, UseTram: *tram, Seed: 1,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	res, err := app.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("LPs: %d   initial events/LP: %d   TRAM: %v\n", *pes**lpsPerPE, *events, *tram)
	fmt.Printf("committed events: %d over %d YAWNS windows\n", res.Committed, res.Windows)
	fmt.Printf("virtual time: %.4f s   event rate: %.0f events/s   max VT: %.1f\n",
		float64(res.Elapsed), res.EventRate, res.MaxVT)
	if *tram {
		st := app.TramStats()
		fmt.Printf("TRAM: %d items in %d messages (%.1f items/msg), %d timed flushes\n",
			st.ItemsSubmitted, st.MsgsSent,
			float64(st.ItemsSubmitted)/float64(st.MsgsSent), st.TimedFlushes)
	}
}
