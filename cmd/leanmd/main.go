// Command leanmd runs the LeanMD molecular-dynamics mini-app on a chosen
// virtual machine, optionally with load balancing, in-memory
// checkpointing, a simulated PE failure, or a mid-run shrink/expand.
package main

import (
	"flag"
	"fmt"
	"os"

	"charmgo/internal/charm"
	"charmgo/internal/ckpt"
	"charmgo/internal/lb"
	"charmgo/internal/machine"
	"charmgo/internal/malleable"
	"charmgo/internal/projections"
	"charmgo/internal/telemetry"
	"charmgo/internal/trace"

	"charmgo/internal/apps/leanmd"
)

func main() {
	pes := flag.Int("pes", 64, "processing elements")
	cells := flag.Int("cells", 6, "cells per dimension")
	atoms := flag.Int("atoms", 27, "atoms per cell (capped at the safe density)")
	steps := flag.Int("steps", 20, "simulation steps")
	gaussian := flag.Float64("gaussian", 0, "atom concentration (0 = uniform)")
	balancer := flag.String("lb", "", "load balancer: greedy, refine, hybrid, distributed, orb")
	lbPeriod := flag.Int("lb-period", 5, "AtSync period in steps")
	memCkpt := flag.Int("ckpt-step", 0, "take an in-memory checkpoint at this step (0 = off)")
	failStep := flag.Int("fail-step", 0, "kill PE 1 at this step and recover (0 = off)")
	shrinkTo := flag.Int("shrink-to", 0, "shrink to this PE count at the midpoint (0 = off)")
	mach := flag.String("machine", "vesta", "machine: vesta, bluewaters, stampede, hopper, cloud")
	multicast := flag.Bool("multicast", false, "send cell positions via section multicast")
	traceOut := flag.String("trace", "", "write a utilization trace (JSON) to this file")
	perfetto := flag.String("perfetto", "", "record an event trace and write Chrome trace-event JSON here")
	eventsOut := flag.String("events", "", "record an event trace and write the raw event log here")
	profile := flag.Bool("profile", false, "record an event trace and print the projections summary")
	telemetryAddr := flag.String("telemetry", "", "serve live introspection (/status, /metrics, /events, pprof) on this address, e.g. :8080")
	flag.Parse()

	rt := charm.New(machine.New(pickMachine(*mach, *pes)))
	var tel *telemetry.Telemetry
	if *telemetryAddr != "" {
		tel = telemetry.Attach(rt, telemetry.Options{})
		defer tel.DumpOnPanic()
		srv, err := telemetry.Serve(*telemetryAddr, tel)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("telemetry: http://%s\n", srv.Addr())
	}
	cfg := leanmd.Config{
		CellsX: *cells, CellsY: *cells, CellsZ: *cells,
		AtomsPerCell: *atoms, Gaussian: *gaussian, Steps: *steps, Seed: 1,
		UseMulticast: *multicast,
	}
	var tr *trace.Tracer
	if *traceOut != "" {
		tr = trace.New(rt, 1e-4)
		tr.Start()
	}
	var events *projections.Tracer
	if *perfetto != "" || *eventsOut != "" || *profile {
		events = projections.Attach(rt, projections.Options{EngineEvents: true})
	}
	if s := pickStrategy(*balancer); s != nil {
		rt.SetBalancer(s)
		cfg.LBPeriod = *lbPeriod
	}
	var mem *ckpt.Mem
	mgr := malleable.NewManager(rt)
	cfg.StepHook = func(step int) {
		if *memCkpt > 0 && step == *memCkpt {
			mem = ckpt.NewMem(rt)
			d := mem.Checkpoint()
			fmt.Printf("step %d: in-memory checkpoint took %.1f ms (virtual)\n", step, float64(d)*1e3)
		}
		if *failStep > 0 && step == *failStep {
			if mem == nil {
				fmt.Fprintln(os.Stderr, "fail-step needs an earlier ckpt-step")
				os.Exit(2)
			}
			d, err := mem.FailAndRecover(1)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("step %d: PE 1 failed; recovery took %.1f ms (virtual)\n", step, float64(d)*1e3)
		}
		if *shrinkTo > 0 && step == *steps/2 {
			if err := mgr.Reconfigure(*shrinkTo); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("step %d: shrunk to %d PEs\n", step, *shrinkTo)
		}
	}

	res, err := leanmd.Run(rt, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if tel != nil {
		tel.Final()
	}
	ts := res.StepTimes()
	fmt.Printf("atoms=%d steps=%d PEs=%d machine=%s\n", res.Atoms, len(ts), rt.NumPEs(), *mach)
	for i, t := range ts {
		fmt.Printf("step %3d  %.4f s  energy %.3f\n", i, t, res.Energy[i])
	}
	fmt.Printf("total virtual time: %.4f s; migrations: %d; LB rounds: %d\n",
		float64(res.Elapsed), rt.Stats.Migrations, rt.LBRounds())
	if tr != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := tr.WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("trace: %d samples to %s\n", len(tr.Samples()), *traceOut)
	}
	if events != nil {
		if *profile {
			fmt.Println()
			if err := events.WriteSummary(os.Stdout, 10); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		writeEvents := func(path string, fn func(*os.File) error, what string) {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			if err := fn(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("%s: %d events to %s\n", what, events.Recorded(), path)
		}
		if *perfetto != "" {
			writeEvents(*perfetto, func(f *os.File) error {
				return projections.WritePerfetto(f, events.Events())
			}, "perfetto trace")
		}
		if *eventsOut != "" {
			writeEvents(*eventsOut, func(f *os.File) error {
				return projections.WriteLog(f, events.Events())
			}, "event log")
		}
	}
}

func pickMachine(name string, pes int) machine.Config {
	switch name {
	case "vesta":
		return machine.Vesta(pes)
	case "bluewaters":
		return machine.BlueWaters(pes)
	case "stampede":
		return machine.Stampede(pes)
	case "hopper":
		return machine.Hopper(pes)
	case "cloud":
		return machine.Cloud(pes)
	}
	fmt.Fprintf(os.Stderr, "unknown machine %q\n", name)
	os.Exit(2)
	return machine.Config{}
}

func pickStrategy(name string) charm.Strategy {
	switch name {
	case "":
		return nil
	case "greedy":
		return lb.Greedy{}
	case "refine":
		return lb.Refine{}
	case "hybrid":
		return lb.Hybrid{}
	case "distributed":
		return lb.Distributed{Seed: 1}
	case "orb":
		return lb.ORB{}
	}
	fmt.Fprintf(os.Stderr, "unknown balancer %q\n", name)
	os.Exit(2)
	return nil
}
