// Command projections traces a mini-app run and renders Projections-style
// analyses: the per-entry usage profile, message-latency histogram,
// critical path, and phase-parallelism timeline, with optional Chrome
// trace-event (Perfetto) and raw event-log exports.
//
// Modes:
//
//	projections -app leanmd -perfetto out.json     trace a run, export
//	projections -in run.log                        analyze a saved log
//	projections -selfbench [-smoke] [-out f.json]  tracing-overhead bench
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"charmgo/internal/apps/leanmd"
	"charmgo/internal/apps/pdes"
	"charmgo/internal/charm"
	"charmgo/internal/lb"
	"charmgo/internal/machine"
	"charmgo/internal/projections"
)

func main() {
	app := flag.String("app", "leanmd", "app to trace: leanmd, pdes")
	pes := flag.Int("pes", 16, "processing elements")
	backend := flag.String("backend", "sequential", "engine backend: sequential, parallel, optimistic")
	scale := flag.Int("scale", 1, "problem-size multiplier")
	top := flag.Int("top", 10, "profile rows to print")
	perfetto := flag.String("perfetto", "", "write Chrome trace-event JSON here (load at ui.perfetto.dev)")
	logOut := flag.String("log", "", "write the raw event log (JSON lines) here")
	in := flag.String("in", "", "analyze a saved event log instead of running an app")
	selfbench := flag.Bool("selfbench", false, "measure tracing overhead instead of tracing a run")
	smoke := flag.Bool("smoke", false, "selfbench: fewer reps, smaller run")
	out := flag.String("out", "", "selfbench: write the result JSON here")
	flag.Parse()

	switch {
	case *selfbench:
		runSelfbench(*smoke, *out)
	case *in != "":
		analyzeFile(*in, *top, *perfetto)
	default:
		traceRun(*app, *pes, *backend, *scale, *top, *perfetto, *logOut)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

// runApp executes the selected app on a fresh runtime and returns it.
func runApp(app string, pes, scale int, backend string) (*charm.Runtime, *projections.Tracer) {
	cfg := machine.Testbed(pes)
	cfg.Backend = backend
	rt := charm.New(machine.New(cfg))
	tr := projections.Attach(rt, projections.Options{EngineEvents: true})
	rt.SetBalancer(lb.Greedy{})
	runAppOn(rt, app, scale)
	return rt, tr
}

// runAppOn drives one app execution on an existing runtime.
func runAppOn(rt *charm.Runtime, app string, scale int) {
	switch app {
	case "leanmd":
		cfg := leanmd.Config{
			CellsX: 3 * scale, CellsY: 3, CellsZ: 3,
			AtomsPerCell: 20, Steps: 8, Seed: 42,
			LBPeriod: 3, Gaussian: 0.35,
		}
		if _, err := leanmd.Run(rt, cfg); err != nil {
			fatal(err)
		}
	case "pdes":
		cfg := pdes.Config{
			LPs: 64 * scale, EventsPerLP: 8, TargetEvents: 4000 * scale,
			Seed: 42, UseTram: true, LBPeriodWindows: 4,
		}
		if _, err := pdes.Run(rt, cfg); err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown app %q (want leanmd or pdes)\n", app)
		os.Exit(2)
	}
}

func traceRun(app string, pes int, backend string, scale, top int, perfetto, logOut string) {
	rt, tr := runApp(app, pes, scale, backend)
	if err := tr.WriteSummary(os.Stdout, top); err != nil {
		fatal(err)
	}
	writeSpecSummary(os.Stdout, rt)
	events := tr.Events()
	if perfetto != "" {
		writeTo(perfetto, func(f *os.File) error { return projections.WritePerfetto(f, events) })
		fmt.Printf("\nperfetto trace: %d events to %s\n", len(events), perfetto)
	}
	if logOut != "" {
		writeTo(logOut, func(f *os.File) error { return projections.WriteLog(f, events) })
		fmt.Printf("event log: %d events to %s\n", len(events), logOut)
	}
}

// writeSpecSummary appends the Time Warp section to the text summary: the
// optsim.* gauges the optimistic engine and the runtime's snapshot
// controller export into the metric registry at run end. Self-suppressing
// on backends that never speculate (the gauges are absent or zero).
func writeSpecSummary(w io.Writer, rt *charm.Runtime) {
	vals := map[string]float64{}
	for _, s := range rt.Metrics().Snapshot() {
		vals[s.Name] = s.Value
	}
	if vals["optsim.spec_launched"] == 0 && vals["optsim.spec_rolled_back"] == 0 &&
		vals["optsim.inline_events"] == 0 {
		return
	}
	fmt.Fprintf(w, "\n== Speculation (Time Warp) ==\n")
	fmt.Fprintf(w, "  launched %.0f  committed %.0f  rolled back %.0f  inline %.0f\n",
		vals["optsim.spec_launched"], vals["optsim.spec_committed"],
		vals["optsim.spec_rolled_back"], vals["optsim.inline_events"])
	fmt.Fprintf(w, "  rollback ratio %.4f  wasted work %.1f%%  max in flight %.0f\n",
		vals["optsim.rollback_ratio"], 100*vals["optsim.wasted_work_fraction"],
		vals["optsim.max_in_flight"])
	fmt.Fprintf(w, "  max GVT lag %.3g vs  snapshots %.0f (%.1f KB, %.0f restored)\n",
		vals["optsim.max_gvt_lag"], vals["optsim.snapshots"],
		vals["optsim.snapshot_bytes"]/1024, vals["optsim.snapshot_restores"])
	fmt.Fprintf(w, "  snapshots avoided %.0f  replayed deliveries %.0f  save invalidations %.0f\n",
		vals["optsim.snapshots_avoided"], vals["optsim.replays"],
		vals["optsim.save_invalidations"])
	fmt.Fprintf(w, "  snap interval K=%.0f  optimism window %.3g vs\n",
		vals["optsim.snap_interval"], vals["optsim.window"])
}

func analyzeFile(path string, top int, perfetto string) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	events, err := projections.ReadLog(f)
	if err != nil {
		fatal(err)
	}
	if err := projections.WriteSummaryEvents(os.Stdout, events, top); err != nil {
		fatal(err)
	}
	if perfetto != "" {
		writeTo(perfetto, func(f *os.File) error { return projections.WritePerfetto(f, events) })
		fmt.Printf("\nperfetto trace: %d events to %s\n", len(events), perfetto)
	}
}

func writeTo(path string, fn func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := fn(f); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
}

// benchResult is the BENCH_projections.json payload.
type benchResult struct {
	Bench       string  `json:"bench"`
	App         string  `json:"app"`
	Smoke       bool    `json:"smoke"`
	Reps        int     `json:"reps"`
	DisabledNs  int64   `json:"disabled_ns"`  // median wall time, no tracer attached
	EnabledNs   int64   `json:"enabled_ns"`   // median wall time, tracer + engine events
	OverheadPct float64 `json:"overhead_pct"` // enabled vs disabled
	Events      uint64  `json:"events"`       // events recorded per traced run
}

// runSelfbench measures the wall-clock cost of tracing: the same LeanMD
// run with no tracer attached (the nil-hook fast path) and with the full
// tracer recording engine events. Virtual results are identical by
// construction; only wall time differs.
func runSelfbench(smoke bool, out string) {
	reps, scale := 7, 2
	if smoke {
		reps, scale = 3, 1
	}
	run := func(traced bool) (int64, uint64) {
		times := make([]int64, 0, reps)
		var events uint64
		for i := 0; i < reps; i++ {
			cfg := machine.Testbed(16)
			rt := charm.New(machine.New(cfg))
			rt.SetBalancer(lb.Greedy{})
			var tr *projections.Tracer
			if traced {
				tr = projections.Attach(rt, projections.Options{EngineEvents: true})
			}
			t0 := time.Now()
			runAppOn(rt, "leanmd", scale)
			times = append(times, time.Since(t0).Nanoseconds())
			if tr != nil {
				events = tr.Recorded()
			}
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		return times[len(times)/2], events
	}
	disabled, _ := run(false)
	enabled, events := run(true)
	res := benchResult{
		Bench: "projections_overhead", App: "leanmd", Smoke: smoke, Reps: reps,
		DisabledNs: disabled, EnabledNs: enabled,
		OverheadPct: 100 * (float64(enabled) - float64(disabled)) / float64(disabled),
		Events:      events,
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		fatal(err)
	}
	if out != "" {
		writeTo(out, func(f *os.File) error {
			e := json.NewEncoder(f)
			e.SetIndent("", "  ")
			return e.Encode(res)
		})
	}
}
