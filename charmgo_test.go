package charmgo

import (
	"testing"

	"charmgo/internal/machine"
	"charmgo/internal/pup"
)

// facadeChare exercises the public API surface end to end.
type facadeChare struct{ N int64 }

func (f *facadeChare) Pup(p *pup.Pup) { p.Int64(&f.N) }

func TestPublicFacade(t *testing.T) {
	rt := NewRuntime(NewMachine(machine.Stampede(16)))
	var arr *Array
	var reduced int64
	handlers := []Handler{
		0: func(obj Chare, ctx *Ctx, msg any) {
			c := obj.(*facadeChare)
			c.N++
			ctx.Charge(1e-6)
			ctx.Contribute(c.N, SumI64, CallbackFunc(0, func(ctx *Ctx, r any) {
				reduced = r.(int64)
			}))
		},
	}
	arr = rt.DeclareArray("facade", func() Chare { return &facadeChare{} },
		handlers, ArrayOpts{Migratable: true})
	const n = 12
	for i := 0; i < n; i++ {
		arr.Insert(Idx1(i), &facadeChare{})
	}
	arr.Broadcast(0, nil)
	end := rt.Run()
	if end <= 0 {
		t.Fatal("no virtual time elapsed")
	}
	if reduced != n {
		t.Fatalf("reduction through facade = %d, want %d", reduced, n)
	}

	// Index constructors re-exported correctly.
	if Idx3(1, 2, 3).K() != 3 {
		t.Fatal("Idx3 broken through facade")
	}
	if BitVecFromCoords(1, 0, 1, 1) != BitVec(0b101, 1) {
		t.Fatal("bitvector constructors disagree")
	}

	// Reducers exposed.
	if MaxF64.Merge(1.0, 2.0).(float64) != 2.0 || MinI64.Merge(int64(3), int64(1)).(int64) != 1 {
		t.Fatal("reducers broken through facade")
	}
	if AndB.Merge(true, false).(bool) || !OrB.Merge(true, false).(bool) {
		t.Fatal("boolean reducers broken")
	}
	v := SumVecF64.Merge([]float64{1, 2}, []float64{3, 4}).([]float64)
	if v[0] != 4 || v[1] != 6 {
		t.Fatal("vector reducer broken")
	}
}
